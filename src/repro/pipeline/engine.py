"""Parallel sharded audit engine.

The corpus shards naturally by service: trace generation is seeded per
``(seed, service, platform, kind, age)``, the beacon cursor is
per-service, and classification is a pure function of the key — so one
service's capture → parse → classify → flow-build stage never observes
another's state.  The engine exploits that:

1. **shard** — one :class:`ShardTask` per configured service;
2. **capture/parse/classify/flow-build** — :func:`process_shard` runs
   the whole per-service stage and returns a :class:`ShardResult`;
3. **merge** — shard results fold into one :class:`FlowTable` and
   :class:`DatasetSummary` in service-spec order, so the merged state
   is byte-for-byte what the sequential loop produces;
4. **audit/linkability** — downstream analyses run on the merged state
   (in :class:`repro.pipeline.diffaudit.DiffAudit`).

Executors decide *where* stage 2 runs: :class:`SequentialExecutor`
in-process (deterministic fallback, zero overhead), or
:class:`ProcessPoolShardExecutor` across worker processes
(``--jobs N``).

Parallel scheduling is size-balanced: per-service shards are badly
cost-skewed (a heavy service can cost more than the rest of the corpus
combined), so the engine estimates every shard's cost — trace-unit
packet volume for generated corpora, artifact byte sizes for replayed
ones — splits oversized service shards into contiguous sub-shards of
trace units (:func:`split_shard_tasks`), and submits the lot to the
pool unordered, largest first (LPT).  Results are reassembled into the
canonical service/unit order before merging, so sequential and
parallel runs stay byte-identical no matter how workers were
scheduled.  Splitting is safe because a skipped trace unit still
advances cross-unit generator state (see
:meth:`repro.services.generator.TrafficGenerator.generate_service`),
making every sub-shard's traffic identical to its slice of a whole-
service run.

With ``cache_dir`` set, classifications additionally persist in a
process-safe SQLite store (:mod:`repro.datatypes.store`) shared by
every shard worker and every run: shards drain their cache misses
through per-trace batches, warm re-runs never reach the inner
classifier, and results stay byte-identical either way.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import pickle
import signal
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Iterable, Protocol

from repro.datatypes.base import Classifier
from repro.datatypes.cache import CachingClassifier
from repro.datatypes.extract import extract_from_request
from repro.datatypes.store import (
    ClassificationStore,
    PersistentClassifier,
    StoreError,
    store_path_for,
    unit_result_epoch,
)
from repro.destinations.blocklists import BlockListCollection
from repro.destinations.entities import EntityDatabase
from repro.destinations.party import DestinationLabeler
from repro.faults.plan import FAULTS_FIRED, FaultPlan
from repro.flows.builder import FlowBuilder
from repro.flows.dataflow import FlowObservation, FlowTable
from repro.obs.metrics import REGISTRY
from repro.obs.trace import SpanRecorder
from repro.pipeline.corpus import CorpusProcessor, ParsedTrace
from repro.pipeline.dataset import DatasetSummary
from repro.pipeline.profile import StageTimer
from repro.pipeline.replay import (
    ReplayCorpus,
    ReplayError,
    TraceUnit,
    load_parsed_trace,
    merge_manifest_traces,
    read_manifest,
    strict_unit_error,
    trace_record,
    unit_digest,
    unit_digest_or_placeholder,
    write_manifest,
)
from repro.services.catalog import ServiceSpec
from repro.services.generator import CorpusConfig

# Engine telemetry (see docs/observability.md).  Bound once; every
# increment is a plain attribute add.  Instrumentation is
# observational only — nothing here feeds back into results.
_RUNS = REGISTRY.counter("repro_engine_runs_total")
_TASKS_DISPATCHED = REGISTRY.counter("repro_engine_tasks_dispatched_total")
_UNITS_CACHED = REGISTRY.counter("repro_engine_units_cached_total")
_UNITS_DIRTY = REGISTRY.counter("repro_engine_units_dirty_total")
_UNIT_STORE_HITS = REGISTRY.counter("repro_store_unit_hits_total")
_QUEUE_DEPTH = REGISTRY.gauge("repro_engine_queue_depth")
_SHARD_RETRIES = REGISTRY.counter("repro_engine_shard_retries_total")
_SHARD_CRASHES = REGISTRY.counter("repro_engine_shard_crashes_total")
_BISECTION_PROBES = REGISTRY.counter("repro_engine_bisection_probes_total")
_DEGRADED_UNITS = REGISTRY.counter("repro_engine_degraded_units_total")


@dataclass(slots=True)
class ShardTask:
    """Everything one worker needs to process one service shard.

    The task is self-contained and picklable: a worker process
    reconstructs the processor, labeler and flow builder from it
    without sharing any state with the parent.

    With ``replay_units`` set, the shard's traces come from artifact
    files on disk instead of the in-memory generate → capture → parse
    loop; everything downstream of trace parsing is identical.

    A task may cover the whole service (``unit_range is None``,
    ``part == 0``) or one contiguous sub-shard of its trace units —
    the scheduler splits oversized services so worker wall time
    balances.  ``estimated_cost`` is the scheduler's relative cost
    guess, used only for splitting and largest-first submission.

    ``classifier``, ``entity_db`` and ``blocklists`` may be ``None``,
    meaning "the defaults": the worker rebuilds them locally (memoized
    per process) instead of the parent pickling the full default stack
    — catalog, entity database, blocklists — into every task.  A
    ``None`` classifier is rebuilt over ``cache_dir``'s persistent
    store when set.  Only non-default components are ever serialized.
    """

    service: str
    config: CorpusConfig  # already restricted to this one service
    classifier: Classifier | None = None
    confidence_threshold: float = 0.8
    entity_db: EntityDatabase | None = None
    blocklists: BlockListCollection | None = None
    cache_dir: Path | str | None = None
    artifacts_dir: Path | None = None
    replay_units: tuple[TraceUnit, ...] | None = None
    unit_range: tuple[int, int] | None = None  # [start, stop) trace units
    part: int = 0  # sub-shard index within the service (canonical order)
    estimated_cost: float = 0.0
    # Graceful degradation (``--keep-going``): a unit that fails decode
    # is quarantined into ``ShardResult.degraded`` instead of aborting
    # the shard.  False (``--strict``, the default) fails fast with an
    # error naming the unit.
    keep_going: bool = False
    # Seeded fault-injection plan (``--inject-faults``); None in
    # normal operation.  Evaluated worker-side so pool workers replay
    # the exact same fault schedule as a sequential run would.
    faults: FaultPlan | None = None
    # Which executor attempt is running this task (0 = first).  The
    # retrying process pool bumps it on resubmission so transient
    # injected kills don't re-fire and recovery terminates.
    fault_attempt: int = 0


@dataclass(slots=True, frozen=True)
class DegradedUnit:
    """One quarantined trace unit: the record of a contained failure.

    Collected instead of raised under ``--keep-going``: the audit
    completes without the unit, the report gains a ``degraded``
    section listing these, and the CLI exits 3 ("completed with
    degraded units").  Carries everything an operator needs to triage
    without re-running: which unit, where its artifact lives, its
    content digest, the pipeline stage that failed, and the error.
    """

    service: str
    unit: str  # trace unit name
    path: str  # primary artifact path
    digest: str  # content digest ("unavailable" if undigestable)
    stage: str  # "decode" (artifact unreadable) or "process" (worker died)
    error: str  # exception class name, e.g. "ReplayError", "WorkerCrash"
    detail: str  # human-readable failure description


def _degraded_for_unit(
    service: str, unit: TraceUnit, stage: str, error: str, detail: str
) -> DegradedUnit:
    source = unit.har if unit.har is not None else unit.pcap
    return DegradedUnit(
        service=service,
        unit=unit.meta.name,
        path=str(source),
        digest=unit_digest_or_placeholder(unit),
        stage=stage,
        error=error,
        detail=detail,
    )


@dataclass(slots=True)
class ShardResult:
    """One service's slice of the corpus, ready to merge."""

    service: str
    flows: FlowTable
    dataset: DatasetSummary
    contacted: set[str]
    raw_keys: set[str]
    classified: set[str]  # unique keys this shard's builder classified
    owners: dict[str, str | None] = field(default_factory=dict)  # fqdn -> owner
    trace_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Persistent-store layer counters (zero without --cache-dir): of
    # the in-memory misses above, how many the disk store answered vs
    # how many reached the inner classifier.
    store_hits: int = 0
    store_misses: int = 0
    # Wall time per stage (see repro.pipeline.profile.SHARD_STAGES).
    stage_times: dict[str, float] = field(default_factory=dict)
    # Units quarantined under --keep-going (empty in strict mode —
    # their failures raise instead).
    degraded: list[DegradedUnit] = field(default_factory=list)


def default_classifier() -> Classifier:
    """The paper's final labeling scheme: majority-average @0.8."""
    from repro.datatypes.majority import MajorityVoteClassifier

    return MajorityVoteClassifier(confidence_mode="avg")


def prepare_classifier(
    classifier: Classifier | None,
    cache_dir: Path | str | None,
    faults: FaultPlan | None = None,
) -> Classifier:
    """The classifier stack every pipeline front door builds.

    Defaults, then — with a ``--cache-dir`` — layers the persistent
    store underneath, touching it eagerly so an unusable directory (a
    file, unwritable, unrecoverably corrupt) fails before any
    expensive work starts; store failures *mid-run* degrade to
    uncached instead.  Shared by the batch engine and the streaming
    session so the two can never wire the store differently.  A
    ``faults`` plan that injects store faults rides on the persistent
    layer (see :class:`repro.faults.FlakyStore`).
    """
    if classifier is None:
        classifier = default_classifier()
    if cache_dir is not None:
        classifier = PersistentClassifier.wrap(
            classifier, store_path_for(cache_dir), faults=faults
        )
        classifier.store
    return classifier


def record_run_stats(
    classifier: Classifier,
    *,
    memory_hits: int,
    store_hits: int,
    misses: int,
) -> None:
    """Append one run's merged counters to the persistent store.

    Best-effort by contract: the audit already succeeded, so a store
    failure here warns instead of discarding the result.  No-op
    without a persistent layer.
    """
    if not isinstance(classifier, PersistentClassifier):
        return
    try:
        classifier.store.record_run(
            classifier.inner.name,
            memory_hits=memory_hits,
            store_hits=store_hits,
            misses=misses,
        )
    except StoreError as exc:
        print(
            f"warning: could not record run statistics: {exc}",
            file=sys.stderr,
        )


@lru_cache(maxsize=4)
def _worker_classifier(
    cache_dir: str | None, faults: FaultPlan | None = None
) -> Classifier:
    """The default classifier stack, rebuilt worker-side.

    Memoized per process so every sub-shard a worker picks up shares
    one stack (and, with a ``cache_dir``, one store connection).  On
    Linux the pool forks, so workers usually inherit the parent's
    warmed module caches for free; this covers spawn too.  The fault
    plan is part of the key — frozen and hashable by design — so a
    faulted run never reuses a clean run's store wiring.
    """
    return prepare_classifier(None, cache_dir, faults=faults)


def resolve_task_stack(
    task: ShardTask,
) -> tuple[Classifier, EntityDatabase, BlockListCollection]:
    """A task's (classifier, entity_db, blocklists), defaults rebuilt.

    The inverse of task slimming: components the parent left ``None``
    (because they were the defaults) are reconstructed from the
    memoized default builders instead of having been pickled through
    the pool.
    """
    classifier = task.classifier
    if classifier is None:
        cache_dir = (
            str(task.cache_dir) if task.cache_dir is not None else None
        )
        classifier = _worker_classifier(cache_dir, task.faults)
    entity_db = task.entity_db
    if entity_db is None:
        from repro.destinations.entities import default_entity_db

        entity_db = default_entity_db()
    blocklists = task.blocklists
    if blocklists is None:
        from repro.destinations.blocklists import default_blocklists

        blocklists = default_blocklists()
    return classifier, entity_db, blocklists


def labeler_for(
    spec: ServiceSpec,
    entity_db: EntityDatabase,
    blocklists: BlockListCollection,
) -> DestinationLabeler:
    """One service's destination labeler (shared by shard and audit)."""
    return DestinationLabeler(
        service_names=spec.first_party_names,
        first_party_owner=spec.first_party_owner,
        entity_db=entity_db,
        blocklists=blocklists,
    )


def shard_trace_source(task: ShardTask) -> "Iterable[ParsedTrace]":
    """Where a shard's parsed traces come from: replayed artifact
    files when the task carries replay units, the in-memory generate →
    capture → parse loop otherwise.  Both stream one trace at a time."""
    if task.replay_units is not None:
        return (load_parsed_trace(unit) for unit in task.replay_units)
    return CorpusProcessor(
        config=task.config,
        artifacts_dir=task.artifacts_dir,
        unit_range=task.unit_range,
    )


def _replay_trace_source(
    task: ShardTask, degraded: list[DegradedUnit]
) -> "Iterable[ParsedTrace]":
    """Replay decode with per-unit error containment.

    A unit whose artifact cannot be decoded (real corruption, or a
    fault plan's synthetic corruption) either aborts the shard with an
    error naming the unit, its path and its digest (strict mode) or is
    quarantined into ``degraded`` and skipped (``--keep-going``) — one
    bad unit never costs the rest of the shard.
    """
    for unit in task.replay_units or ():
        try:
            if task.faults is not None and task.faults.corrupt_unit(
                unit.meta.name
            ):
                raise ReplayError(
                    f"fault injection (profile {task.faults.profile!r}, "
                    f"seed {task.faults.seed}): artifact for trace "
                    f"{unit.meta.name!r} treated as corrupt"
                )
            yield load_parsed_trace(unit)
        except ReplayError as exc:
            if not task.keep_going:
                raise strict_unit_error(unit, exc) from exc
            cause = exc.__cause__
            degraded.append(
                _degraded_for_unit(
                    task.service,
                    unit,
                    stage="decode",
                    error=type(cause or exc).__name__,
                    detail=str(exc),
                )
            )


def _apply_worker_faults(task: ShardTask) -> None:
    """Evaluate a task's kill/stall faults, worker-side.

    Kill faults (including a persistent ``poison_unit``) only fire in
    process-pool workers — ``multiprocessing.parent_process()`` is set
    there — never in the parent, a thread, or the in-process fallback:
    injected crashes must exercise recovery, not commit suicide.
    Stalls fire everywhere; a sleep never changes output bytes.
    """
    faults = task.faults
    if faults is None:
        return
    in_pool_worker = multiprocessing.parent_process() is not None
    if in_pool_worker:
        poison = faults.poison_unit
        if poison is not None and any(
            unit.meta.name == poison for unit in task.replay_units or ()
        ):
            os._exit(1)
        if faults.kill_worker(task.service, task.part, task.fault_attempt):
            os._exit(1)
    delay = faults.stall_worker(task.service, task.part)
    if delay:
        time.sleep(delay)


def process_shard(task: ShardTask) -> ShardResult:
    """Run capture → parse → classify → flow-build for one service.

    Two passes over the shard: the first pass drains the trace source
    (generation or artifact decode), folds dataset stats and extracts
    each request's raw keys — keeping only ``(fqdn, keys)`` per
    request, so request bodies are dropped as soon as they are mined.
    Classification then happens ONCE for the whole shard
    (:meth:`repro.flows.builder.FlowBuilder.prime_sequence`): one
    descent through the classifier stack — one persistent-store
    round-trip, one inner batch — instead of one per trace.  The
    second pass builds flows from the retained pairs; every lookup is
    an in-memory hit.  Wall time is attributed per stage in
    ``ShardResult.stage_times``.
    """
    _apply_worker_faults(task)
    timer = StageTimer()
    with timer.stage("setup"):
        classifier, entity_db, blocklists = resolve_task_stack(task)
        (spec,) = [
            s for s in task.config.service_specs() if s.key == task.service
        ]
        labeler = labeler_for(spec, entity_db, blocklists)
        # A task may arrive with an already-cached classifier (the
        # sequential executor shares one cache across shards, so keys
        # common to several services are classified once per corpus);
        # count only this shard's hits/misses either way.
        cache = CachingClassifier.wrap(classifier)
        hits_before, misses_before = cache.hits, cache.misses
        # With --cache-dir the classifier stack is memory → disk store
        # → inner; snapshot the persistent layer's counters so the
        # shard can report how much of its work the store absorbed.
        persistent = (
            cache.inner
            if isinstance(cache.inner, PersistentClassifier)
            else None
        )
        store_hits_before = persistent.store_hits if persistent else 0
        store_misses_before = persistent.misses if persistent else 0
        store_get_before = persistent.store_get_s if persistent else 0.0
        store_put_before = persistent.store_put_s if persistent else 0.0
        builder = FlowBuilder(
            classifier=cache, confidence_threshold=task.confidence_threshold
        )

    flows = FlowTable()
    dataset = DatasetSummary()
    contacted: set[str] = set()
    raw_keys: set[str] = set()
    trace_count = 0
    # Per trace: (platform, kind, age, [(fqdn, keys), ...]) — all the
    # flow-building pass needs once keys are extracted.
    trace_plans: list[tuple[object, object, object, list[tuple[str, list[str]]]]] = []
    key_lists: list[list[str]] = []

    degraded: list[DegradedUnit] = []
    source_stage = "decode" if task.replay_units is not None else "generate"
    if task.replay_units is not None:
        # The containment-aware source: decode failures quarantine
        # (keep-going) or raise an enriched strict error per unit.
        source = iter(_replay_trace_source(task, degraded))
    else:
        source = iter(shard_trace_source(task))
    while True:
        with timer.stage(source_stage):
            parsed = next(source, None)
        if parsed is None:
            break
        trace_count += 1
        with timer.stage("dataset"):
            dataset.add_trace(parsed)
            contacted.update(parsed.contacted_hosts())
        with timer.stage("extract"):
            requests: list[tuple[str, list[str]]] = []
            trace_keys: list[str] = []
            for request in parsed.requests:
                keys = [
                    item.key for item in extract_from_request(request)
                ]
                requests.append((request.url.fqdn, keys))
                trace_keys.extend(keys)
                raw_keys.update(keys)
        with timer.stage("label"):
            # Opaque flows still label their destinations (party/ATS
            # classification does not need plaintext).
            for host in parsed.opaque_hosts:
                if host:
                    labeler.label(host)
        trace_plans.append(
            (parsed.meta.platform, parsed.meta.kind, parsed.meta.age, requests)
        )
        key_lists.append(trace_keys)

    # One classification descent for the whole shard.  Equivalent to
    # per-trace priming, key for key (see prime_sequence), so cache
    # hit/miss arithmetic is unchanged.
    with timer.stage("classify"):
        builder.prime_sequence(key_lists)

    with timer.stage("flow_build"):
        for platform, kind, age, requests in trace_plans:
            for fqdn, keys in requests:
                observations = builder.flows_for_destination(
                    fqdn,
                    labeler,
                    service=task.service,
                    platform=platform,
                    kind=kind,
                    age=age,
                    keys=keys,
                )
                flows.extend(observations)

    # Register parties (and owners, for the census/alluvial lookups
    # downstream) for every contacted host so destination-only
    # (opaque) contacts count too.
    with timer.stage("label"):
        owners: dict[str, str | None] = {}
        for host in contacted:
            label = labeler.label(host)
            flows.register_party(task.service, host, label.party)
            owners[host] = label.owner

    if persistent is not None:
        timer.add("store_get", persistent.store_get_s - store_get_before)
        timer.add("store_put", persistent.store_put_s - store_put_before)

    return ShardResult(
        service=task.service,
        flows=flows,
        dataset=dataset,
        contacted=contacted,
        raw_keys=raw_keys,
        classified=builder.classified_key_set(),
        owners=owners,
        trace_count=trace_count,
        cache_hits=cache.hits - hits_before + builder.lookup_hits,
        cache_misses=cache.misses - misses_before,
        store_hits=(persistent.store_hits - store_hits_before) if persistent else 0,
        store_misses=(persistent.misses - store_misses_before) if persistent else 0,
        stage_times=timer.times,
        degraded=degraded,
    )


# ----------------------------------------------------------------------
# Compact shard-result transport (process pool IPC)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class PackedShardResult:
    """A :class:`ShardResult` flattened for cheap pickling.

    A raw ``ShardResult`` pickles its :class:`FlowTable` roll-ups
    (grid, per-destination sets, party map) alongside the observation
    list they are derived from, and every observation as an object
    with eight attribute slots.  The packed form interns every field
    value — strings and enums alike — into one pool and encodes each
    observation as eight pool indexes; roll-ups are dropped entirely
    and rebuilt on unpack by replaying the observations through
    :meth:`FlowTable.add`, exactly as :meth:`FlowTable.merge` would.
    Unpacking is faithful by construction: party registrations replay
    after the adds through ``register_party`` (setdefault semantics),
    the same order merge uses.
    """

    service: str
    pool: tuple
    observations: tuple  # 8-index tuples into ``pool``
    parties: tuple  # (service_i, fqdn_i, party_i) registrations
    contacted: tuple  # pool indexes, original iteration order
    raw_keys: tuple
    classified: tuple
    owners: tuple  # (fqdn_i, owner_i) pairs; owner interned too (may be None)
    dataset: DatasetSummary
    trace_count: int
    cache_hits: int
    cache_misses: int
    store_hits: int
    store_misses: int
    stage_times: dict[str, float]
    # Quarantined units travel as-is: a handful at most, each a small
    # frozen record — not worth interning.
    degraded: tuple = ()
    # Worker-side metrics snapshot (repro.obs): populated only when
    # the shard actually ran in a pool worker, absorbed parent-side in
    # canonical task order, and stripped before unit-result caching —
    # a cached unit's metrics describe work THIS run never did.
    metrics: dict | None = None

    def unpack(self) -> ShardResult:
        pool = self.pool
        flows = FlowTable()
        for s, col, plat, lvl, fqdn, esld, party, raw in self.observations:
            flows.add(
                FlowObservation(
                    service=pool[s],
                    column=pool[col],
                    platform=pool[plat],
                    level3=pool[lvl],
                    fqdn=pool[fqdn],
                    esld=pool[esld],
                    party=pool[party],
                    raw_key=pool[raw],
                )
            )
        for s, fqdn, party in self.parties:
            flows.register_party(pool[s], pool[fqdn], pool[party])
        return ShardResult(
            service=self.service,
            flows=flows,
            dataset=self.dataset,
            contacted={pool[i] for i in self.contacted},
            raw_keys={pool[i] for i in self.raw_keys},
            classified={pool[i] for i in self.classified},
            owners={pool[f]: pool[o] for f, o in self.owners},
            trace_count=self.trace_count,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            store_hits=self.store_hits,
            store_misses=self.store_misses,
            stage_times=self.stage_times,
            degraded=list(self.degraded),
        )


def pack_shard_result(result: ShardResult) -> PackedShardResult:
    """Flatten one shard result into its compact transport form."""
    indexes: dict = {}

    def intern(value) -> int:
        index = indexes.get(value)
        if index is None:
            index = len(indexes)
            indexes[value] = index
        return index

    observations = tuple(
        (
            intern(o.service),
            intern(o.column),
            intern(o.platform),
            intern(o.level3),
            intern(o.fqdn),
            intern(o.esld),
            intern(o.party),
            intern(o.raw_key),
        )
        for o in result.flows.observations()
    )
    parties = tuple(
        (intern(service), intern(fqdn), intern(party))
        for (service, fqdn), party in result.flows._party_by_fqdn.items()
    )
    packed = PackedShardResult(
        service=result.service,
        pool=(),  # filled below, once the intern table is complete
        observations=observations,
        parties=parties,
        contacted=tuple(intern(host) for host in result.contacted),
        raw_keys=tuple(intern(key) for key in result.raw_keys),
        classified=tuple(intern(key) for key in result.classified),
        owners=tuple(
            (intern(fqdn), intern(owner))
            for fqdn, owner in result.owners.items()
        ),
        dataset=result.dataset,
        trace_count=result.trace_count,
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        store_hits=result.store_hits,
        store_misses=result.store_misses,
        stage_times=result.stage_times,
        degraded=tuple(result.degraded),
    )
    packed.pool = tuple(indexes)
    return packed


def _process_shard_packed(task: ShardTask) -> PackedShardResult:
    """Pool-worker entry point: process a shard, ship it packed.

    In a real pool worker the task's metrics delta rides back on the
    packed result: the worker registry is reset before the task (pool
    workers run tasks serially, so the end-of-task snapshot IS the
    delta) and absorbed parent-side in canonical order.  When this
    function runs in the *parent* (single-task shortcut, crash
    recovery fallback) the increments already landed in the parent
    registry — resetting it would destroy the run's telemetry, so no
    snapshot ships.
    """
    in_pool_worker = multiprocessing.parent_process() is not None
    if in_pool_worker:
        REGISTRY.reset()
    packed = pack_shard_result(process_shard(task))
    if in_pool_worker:
        packed.metrics = REGISTRY.snapshot()
    return packed


# ----------------------------------------------------------------------
# Incremental replay (per-unit result cache)
# ----------------------------------------------------------------------


def _decode_unit_payload(payload: bytes, service: str) -> PackedShardResult | None:
    """A stored unit payload back as a packed result, or ``None``.

    Corrupt-row quarantine: a payload that does not unpickle to a
    :class:`PackedShardResult` for the right service — truncated blob,
    bit rot, a hand-edited store — is reported as undecodable; the
    caller deletes the row and treats the unit as dirty, so the worst
    a damaged row can cost is one recomputation.
    """
    try:
        packed = pickle.loads(payload)
    except (
        # Everything pickle.loads raises on garbage input: framing and
        # opcode errors, truncation, references to missing classes.
        pickle.UnpicklingError,
        AttributeError,
        EOFError,
        ImportError,
        IndexError,
        TypeError,
        ValueError,
    ):
        return None
    if not isinstance(packed, PackedShardResult) or packed.service != service:
        return None
    return packed


def _cached_shard_result(packed: PackedShardResult) -> ShardResult:
    """Unpack a cached unit result for merging into *this* run.

    The stored payload carries the counters and stage times of the run
    that produced it; a run that merely loaded it did none of that
    work, so they are zeroed — ``EngineOutput`` counters and profiles
    describe only work actually performed.  The merged audit state is
    untouched (counters never reach the exported report).
    """
    result = packed.unpack()
    result.cache_hits = result.cache_misses = 0
    result.store_hits = result.store_misses = 0
    result.stage_times = {}
    return result


# ----------------------------------------------------------------------
# Size-balanced scheduling
# ----------------------------------------------------------------------

# How many cost chunks to aim for per worker.  >1 keeps the pool busy
# when estimates are imperfect: a worker that finishes a light chunk
# early picks up another instead of idling behind the heavy one.
_CHUNKS_PER_WORKER = 2


def _replay_unit_cost(unit: TraceUnit) -> float:
    """A replayed unit's cost estimate: bytes of artifact to decode."""
    cost = 0.0
    for path in (unit.har, unit.pcap, unit.keylog):
        if path is not None:
            try:
                cost += path.stat().st_size
            # repro-lint: disable=X-SWALLOW — cost estimation only; a vanished artifact fails at decode with a real, recorded error
            except OSError:
                pass
    return cost


def shard_unit_costs(task: ShardTask) -> list[float]:
    """Per-trace-unit cost estimates for one service's shard task."""
    if task.replay_units is not None:
        return [_replay_unit_cost(unit) for unit in task.replay_units]
    from repro.services.generator import estimate_unit_costs

    (spec,) = [s for s in task.config.service_specs() if s.key == task.service]
    return estimate_unit_costs(task.config, spec)


def partition_costs(costs: list[float], parts: int) -> list[tuple[int, int]]:
    """Split indexes 0..len(costs) into ≤ ``parts`` contiguous ranges
    of near-equal estimated cost (every range non-empty, order kept)."""
    parts = max(1, min(parts, len(costs)))
    total = sum(costs)
    if parts == 1 or total <= 0:
        return [(0, len(costs))]
    ranges: list[tuple[int, int]] = []
    start = 0
    cumulative = 0.0
    cut = 1
    for index, cost in enumerate(costs):
        cumulative += cost
        remaining_units = len(costs) - (index + 1)
        if cut < parts and remaining_units >= parts - cut and (
            # this range reached its share of the total cost, or
            cumulative >= cut * total / parts
            # exactly enough units remain to keep later ranges non-empty
            or remaining_units == parts - cut
        ):
            ranges.append((start, index + 1))
            start = index + 1
            cut += 1
    ranges.append((start, len(costs)))
    return ranges


def balanced_split_plan(
    per_item_costs: list[list[float]], jobs: int
) -> list[list[tuple[int, int, float]]]:
    """For each work item, the ``(start, stop, cost)`` sub-ranges to run.

    Every item whose estimated cost exceeds its fair chunk of the
    total (total cost over ``jobs * _CHUNKS_PER_WORKER``) is split
    into contiguous unit ranges of near-equal cost; the rest stay
    whole.  Plans preserve input order, so flattening them yields the
    canonical merge order.
    """
    total = sum(sum(costs) for costs in per_item_costs)
    chunk = total / (jobs * _CHUNKS_PER_WORKER) if total > 0 and jobs > 1 else 0.0
    plans: list[list[tuple[int, int, float]]] = []
    for costs in per_item_costs:
        item_cost = sum(costs)
        parts = min(len(costs), math.ceil(item_cost / chunk)) if chunk > 0 else 1
        if parts <= 1:
            plans.append([(0, len(costs), item_cost)])
            continue
        plans.append(
            [
                (start, stop, sum(costs[start:stop]))
                for start, stop in partition_costs(costs, parts)
            ]
        )
    return plans


def _apply_split_plans(
    items: list, per_item_costs: list[list[float]], jobs: int, make_sub: Callable
) -> list:
    """Turn work items into their planned sub-items, canonical order.

    The one place the split policy is applied — audit shards and
    generate shards both go through here, so the two commands can
    never schedule differently.  ``make_sub(item, part, start, stop,
    cost)`` builds one sub-item; unsplit items just get their cost
    stamped.
    """
    out: list = []
    for item, plan in zip(items, balanced_split_plan(per_item_costs, jobs)):
        if len(plan) == 1:
            out.append(dataclasses.replace(item, estimated_cost=plan[0][2]))
            continue
        for part, (start, stop, cost) in enumerate(plan):
            out.append(make_sub(item, part, start, stop, cost))
    return out


def _shard_sub_task(
    task: ShardTask, part: int, start: int, stop: int, cost: float
) -> ShardTask:
    """One sub-shard: replay tasks carry their unit slice directly,
    generated tasks carry the ``unit_range`` the processor slices by."""
    return dataclasses.replace(
        task,
        part=part,
        unit_range=None if task.replay_units is not None else (start, stop),
        replay_units=(
            task.replay_units[start:stop] if task.replay_units is not None else None
        ),
        estimated_cost=cost,
    )


def split_shard_tasks(tasks: list[ShardTask], jobs: int) -> list[ShardTask]:
    """Split cost-skewed service shards into balanced sub-shards.

    The returned list is in canonical order — service-spec order,
    then unit order — which is the order results must merge in;
    executors are free to *run* it in any order.
    """
    if jobs <= 1:
        return tasks
    per_task_costs = [shard_unit_costs(task) for task in tasks]
    return _apply_split_plans(tasks, per_task_costs, jobs, _shard_sub_task)


@dataclass(slots=True)
class GenerateShard:
    """One generate-only work item (whole service or a unit slice)."""

    service: str
    config: CorpusConfig  # already restricted to this one service
    artifacts_dir: Path | None
    unit_range: tuple[int, int] | None = None
    part: int = 0
    estimated_cost: float = 0.0


def _generate_shard(shard: GenerateShard) -> list[dict]:
    """Generate + capture one shard's artifacts, skipping analysis.

    Returns one manifest record per trace, in generation order."""
    processor = CorpusProcessor(
        config=shard.config,
        artifacts_dir=shard.artifacts_dir,
        unit_range=shard.unit_range,
    )
    return [trace_record(parsed.meta) for parsed in processor]


def generate_corpus_artifacts(
    config: CorpusConfig,
    artifacts_dir: Path | None,
    jobs: int = 1,
    executor: str = "auto",
) -> int:
    """Write every trace artifact plus a manifest; returns the trace count.

    The generate-only sibling of :meth:`AuditEngine.run`: shards (and
    size-balances) the same way but stops after capture — no
    classification, labeling or flow building — since ``python -m
    repro generate`` discards those.  ``manifest.json`` records the
    corpus config and per-trace metadata in generation order, so
    ``audit --from-artifacts`` can replay the directory without
    re-deriving anything from filenames.
    """
    from repro.services.generator import estimate_unit_costs

    pool = executor_for(jobs, executor)
    existing = read_manifest(artifacts_dir) if artifacts_dir is not None else None
    if existing is not None:
        # Fail fast on mismatched corpus knobs before writing anything.
        merge_manifest_traces(existing, config, [])
    specs = config.service_specs()
    shards = [
        GenerateShard(
            service=spec.key,
            config=config.for_service(spec.key),
            artifacts_dir=artifacts_dir,
        )
        for spec in specs
    ]
    if jobs > 1:
        per_shard_costs = [
            estimate_unit_costs(shard.config, spec)
            for shard, spec in zip(shards, specs)
        ]
        shards = _apply_split_plans(
            shards,
            per_shard_costs,
            jobs,
            lambda shard, part, start, stop, cost: dataclasses.replace(
                shard, part=part, unit_range=(start, stop), estimated_cost=cost
            ),
        )
    records = [
        record
        for shard_records in pool.map_shards(shards, work=_generate_shard)
        for record in shard_records
    ]
    generated = len(records)
    if artifacts_dir is not None:
        if existing is not None:
            # Incremental generation into an existing corpus directory:
            # keep the other services' traces instead of clobbering them.
            records = merge_manifest_traces(existing, config, records)
        write_manifest(artifacts_dir, config, records)
    return generated


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class ShardExecutor(Protocol):
    """Anything that can run shard work and return ordered results."""

    jobs: int

    def map_shards(
        self,
        tasks: list,
        work: Callable = process_shard,
        on_result: Callable | None = None,
    ) -> list:  # pragma: no cover
        ...


@dataclass(slots=True)
class ShardCrash:
    """Sentinel result for a task whose worker died repeatedly.

    The retrying process pool emits one per slot that still failed
    after every attempt; the engine then bisects the shard to isolate
    the poison unit and runs the clean remainder in-process.  Never
    leaves the parent process.
    """

    task: object
    attempts: int
    error: str


def _invoke_on_result(on_result: Callable | None, index: int, result) -> None:
    """Deliver one completed raw result to the caller's flush hook.

    ``on_result(index, result)`` fires parent-side as results land, in
    completion order — the engine uses it to persist per-unit results
    the moment they exist, so a SIGKILL later in the run loses nothing
    already computed.  Hooks are best-effort observers: they must not
    raise (the engine's hook swallows into a warning itself), and they
    never see :class:`ShardCrash` sentinels.
    """
    if on_result is not None and not isinstance(result, ShardCrash):
        on_result(index, result)


@dataclass
class SequentialExecutor:
    """In-process execution — the deterministic, zero-overhead fallback."""

    kind = "sequential"
    jobs: int = 1

    def map_shards(
        self,
        tasks: list,
        work: Callable = process_shard,
        on_result: Callable | None = None,
    ) -> list:
        results = []
        for index, task in enumerate(tasks):
            result = work(task)
            _invoke_on_result(on_result, index, result)
            results.append(result)
        return results


def _worker_ignores_interrupt() -> None:
    """Pool-worker initializer: leave Ctrl-C to the parent.

    A terminal SIGINT goes to the whole process group; without this,
    every worker dies printing its own ``KeyboardInterrupt`` traceback
    while the parent is already tearing the pool down.  The parent
    terminates workers explicitly instead.

    SIGTERM goes back to its default: a forked worker inherits the
    CLI's SIGTERM→KeyboardInterrupt handler, which turns the parent's
    own teardown ``terminate()`` into per-worker traceback spew right
    under the one real error message.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


@dataclass
class ProcessPoolShardExecutor:
    """Shard execution across worker processes.

    Tasks are *submitted* unordered — largest estimated cost first
    (LPT scheduling, the classic makespan heuristic) — and collected
    as they complete, but the returned list is always in the input
    tasks' order: the caller's canonical merge order never depends on
    worker scheduling.

    Interrupts tear down cleanly: workers ignore SIGINT, and on any
    exception in the parent (a Ctrl-C included) pending shards are
    cancelled and running workers terminated before the exception
    propagates — no traceback spew from the pool, no orphaned
    processes grinding on work nobody will collect.

    Worker crashes are survivable: a killed worker (OOM, segfault,
    injected fault) breaks the whole pool and poisons every pending
    future with :class:`BrokenProcessPool`.  Completed results are
    kept, the pool is rebuilt, and the failed shards are retried with
    bounded exponential backoff (``max_attempts`` total tries).  A
    shard that dies on every attempt comes back as a
    :class:`ShardCrash` sentinel in its slot — the engine decides
    whether to bisect, degrade, or raise.  Retries never reorder
    anything: results still land by input index, so output bytes are
    untouched by how many times the pool died.
    """

    kind = "process"
    jobs: int = 2
    # Total tries per shard (first run + retries) before its slot
    # becomes a ShardCrash.
    max_attempts: int = 3
    # First retry delay; doubles per retry.  Long enough to let a
    # transient cause (OOM pressure, a dying sibling) clear, short
    # enough to be invisible next to shard wall time.
    retry_backoff_s: float = 0.05
    # Run even a single task through the pool instead of the
    # sequential shortcut — the engine's bisection probes need crash
    # isolation for exactly one task.
    isolate_single: bool = False

    def map_shards(
        self,
        tasks: list,
        work: Callable = process_shard,
        on_result: Callable | None = None,
    ) -> list:
        if len(tasks) <= 1 and not self.isolate_single:
            return SequentialExecutor().map_shards(tasks, work, on_result)
        results: list = [None] * len(tasks)
        current: dict[int, object] = dict(enumerate(tasks))
        pending = list(current)
        for attempt in range(self.max_attempts):
            if not pending:
                break
            if attempt:
                _SHARD_RETRIES.inc(len(pending))
                time.sleep(
                    min(self.retry_backoff_s * (2 ** (attempt - 1)), 1.0)
                )
                # Tasks that understand attempts get told which one
                # this is — transient injected kills key off it.
                for index in pending:
                    task = current[index]
                    if isinstance(task, ShardTask):
                        # A killed worker takes its metrics registry
                        # with it, so injected kills are accounted here
                        # instead, by replaying the plan's pure decision
                        # for the attempt that just crashed (mirroring
                        # _apply_worker_faults: poison fires first).
                        faults = task.faults
                        if faults is not None:
                            poison = faults.poison_unit
                            poisoned = poison is not None and any(
                                unit.meta.name == poison
                                for unit in task.replay_units or ()
                            )
                            if poisoned or faults.kill_worker(
                                task.service, task.part, task.fault_attempt
                            ):
                                FAULTS_FIRED.labels(
                                    "kill-worker", faults.profile
                                ).inc()
                        current[index] = dataclasses.replace(
                            task, fault_attempt=attempt
                        )
            pending = self._run_attempt(
                {index: current[index] for index in pending},
                work,
                results,
                on_result,
            )
        for index in pending:
            results[index] = ShardCrash(
                task=current[index],
                attempts=self.max_attempts,
                error=(
                    f"worker process died on all {self.max_attempts} "
                    "attempts (BrokenProcessPool)"
                ),
            )
        return results

    def _run_attempt(
        self,
        slots: dict[int, object],
        work: Callable,
        results: list,
        on_result: Callable | None,
    ) -> list[int]:
        """One pool generation over ``slots``; returns crashed indexes.

        Completed futures write straight into ``results``; a broken
        pool only costs the shards that had not finished.
        """
        workers = min(self.jobs, len(slots))
        # Heaviest first; ties keep canonical order for determinism.
        submission = sorted(
            slots,
            key=lambda i: (-getattr(slots[i], "estimated_cost", 0.0), i),
        )
        failed: list[int] = []
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_ignores_interrupt
        ) as pool:
            futures = {pool.submit(work, slots[i]): i for i in submission}
            _QUEUE_DEPTH.set(len(futures))
            try:
                for future in as_completed(futures):
                    index = futures[future]
                    _QUEUE_DEPTH.dec()
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        # One dead worker poisons every pending future
                        # in this generation; collect them all and let
                        # the caller retry in a fresh pool.
                        failed.append(index)
                        continue
                    _invoke_on_result(on_result, index, results[index])
            # repro-lint: disable=X-BARE-EXCEPT — teardown guard: terminate pool workers on ANY interrupt (incl. KeyboardInterrupt), then re-raise unchanged
            except BaseException:
                # Snapshot the worker list first — shutdown(wait=False)
                # nulls the executor's process table.
                processes = list((getattr(pool, "_processes", None) or {}).values())
                pool.shutdown(wait=False, cancel_futures=True)
                for process in processes:
                    process.terminate()
                raise
        _QUEUE_DEPTH.set(0)
        if failed:
            # However many futures one dead worker poisoned, the pool
            # broke once this generation.
            _SHARD_CRASHES.inc()
        return sorted(failed)


@dataclass
class ThreadPoolShardExecutor:
    """Shard execution across threads in one process.

    Same LPT submission and canonical-order collection as the process
    pool, but with zero serialization: tasks and results cross the
    executor boundary by reference.  That wins whenever the shard's
    wall time is dominated by work that releases the GIL — artifact
    file reads and SQLite store round-trips (a warm replayed audit is
    mostly both) — or when pickling the results would cost more than
    the contention does.  CPU-bound cold classification still wants
    the process pool.

    Thread safety is by construction, not by locking: the engine gives
    every task its own persistent-classifier copy (SQLite connections
    are per-instance and per-thread), each shard wraps its own
    in-memory cache, and the shared inner classifier is read-only
    after warm-up.
    """

    kind = "thread"
    jobs: int = 2

    def map_shards(
        self,
        tasks: list,
        work: Callable = process_shard,
        on_result: Callable | None = None,
    ) -> list:
        if len(tasks) <= 1:
            return SequentialExecutor().map_shards(tasks, work, on_result)
        workers = min(self.jobs, len(tasks))
        submission = sorted(
            range(len(tasks)),
            key=lambda i: (-getattr(tasks[i], "estimated_cost", 0.0), i),
        )
        results: list = [None] * len(tasks)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(work, tasks[i]): i for i in submission}
            _QUEUE_DEPTH.set(len(futures))
            try:
                for future in as_completed(futures):
                    index = futures[future]
                    _QUEUE_DEPTH.dec()
                    results[index] = future.result()
                    _invoke_on_result(on_result, index, results[index])
            # repro-lint: disable=X-BARE-EXCEPT — teardown guard: cancel queued shards on ANY interrupt, then re-raise unchanged
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        _QUEUE_DEPTH.set(0)
        return results


EXECUTOR_KINDS = ("auto", "sequential", "thread", "process")


def executor_for(
    jobs: int, kind: str = "auto", *, replay: bool = False
) -> ShardExecutor:
    """Pick the executor for ``--jobs N`` / ``--executor KIND``.

    ``auto`` keeps the historical behaviour at ``jobs == 1``
    (sequential, shared in-process cache) and picks between the pools
    at ``jobs > 1``: threads for replayed corpora — decode is file
    I/O and a warm store is SQLite, both GIL-releasing, and results
    need no pickling — processes for generated corpora, whose cold
    path is CPU-bound Python.  An explicit kind is always honoured,
    including pools at ``jobs == 1``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {kind!r} (choose from {', '.join(EXECUTOR_KINDS)})"
        )
    if kind == "auto":
        if jobs == 1:
            return SequentialExecutor()
        kind = "thread" if replay else "process"
    if kind == "sequential":
        return SequentialExecutor()
    if kind == "thread":
        return ThreadPoolShardExecutor(jobs=jobs)
    return ProcessPoolShardExecutor(jobs=jobs)


# ----------------------------------------------------------------------
# Worker-crash recovery: poison-unit bisection
# ----------------------------------------------------------------------


def _isolate_poison_units(task: ShardTask, work: Callable) -> list[TraceUnit]:
    """Bisect a repeatedly-crashing replay shard down to its poison units.

    Splits the shard's unit slice in half and probes each half in a
    fresh single-worker pool (``isolate_single`` keeps even one task
    out of the in-process shortcut — a genuinely crashing unit must
    die in a child, never in the parent).  Halves that survive are
    clean; halves that crash recurse.  A singleton that crashes IS the
    poison.  O(k·log n) probe launches for k poison units — the probes
    exist to *identify* them, their results are discarded; the caller
    reruns the clean remainder in-process.
    """
    units = task.replay_units or ()
    if len(units) <= 1:
        return list(units)
    probe = ProcessPoolShardExecutor(
        jobs=1, max_attempts=2, retry_backoff_s=0.01, isolate_single=True
    )
    mid = len(units) // 2
    halves = [
        dataclasses.replace(task, replay_units=units[:mid]),
        dataclasses.replace(task, replay_units=units[mid:]),
    ]
    poisons: list[TraceUnit] = []
    for half in halves:
        # One pool generation per half: probing both in a shared pool
        # would let the poison half's crash poison the clean sibling's
        # pending future (BrokenProcessPool taints every in-flight
        # future), and a clean unit would get blamed at singleton depth.
        _BISECTION_PROBES.inc()
        if isinstance(probe.map_shards([half], work=work)[0], ShardCrash):
            poisons.extend(_isolate_poison_units(half, work))
    return poisons


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


@dataclass
class EngineOutput:
    """The merged corpus-wide state the downstream audit consumes."""

    flows: FlowTable
    dataset: DatasetSummary
    contacted: dict[str, set[str]]  # service -> contacted hosts
    raw_keys: set[str]
    classified_keys: int
    owners: dict[tuple[str, str], str | None] = field(default_factory=dict)
    trace_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0  # lookups that reached the inner classifier
    # Incremental replay counters (zero outside incremental mode):
    # trace units whose shard result was served from the unit-result
    # cache vs. units that went through process_shard this run.
    unit_hits: int = 0
    unit_misses: int = 0
    # Units quarantined this run (keep-going mode): decode failures
    # contained in shards plus poison units isolated by crash
    # bisection.  Empty in strict mode and on every clean run.
    degraded: list[DegradedUnit] = field(default_factory=list)
    # Wall-time attribution for this run (the ``engine`` section of a
    # profile document — see repro.pipeline.profile): orchestration
    # stages, IPC payload sizes, and the aggregated per-shard stages.
    profile: dict = field(default_factory=dict)


@dataclass
class AuditEngine:
    """Stages 1–3 of the pipeline: shard, process, merge."""

    config: CorpusConfig = field(default_factory=CorpusConfig)
    classifier: Classifier | None = None
    confidence_threshold: float = 0.8
    entity_db: EntityDatabase | None = None
    blocklists: BlockListCollection | None = None
    artifacts_dir: Path | None = None
    # Audit artifacts from disk instead of generating in-memory: a
    # directory path (scanned once here) or an already-scanned
    # ReplayCorpus (no rescan — pass this when the caller scanned the
    # directory itself, e.g. for config resolution).
    replay: "ReplayCorpus | Path | str | None" = None
    jobs: int = 1
    # Which executor runs the shards: "auto" (sequential at jobs=1,
    # thread pool for replayed corpora, process pool otherwise) or an
    # explicit "sequential" / "thread" / "process".
    executor: str = "auto"
    # Directory holding the persistent classification store
    # (``--cache-dir``): classifications persist across runs and are
    # shared by all shard workers, so a warm re-audit never calls the
    # inner classifier at all.  None: in-memory caching only.
    cache_dir: Path | str | None = None
    # Per-unit result reuse for replayed corpora (``--no-incremental``
    # turns it off): with both ``replay`` and ``cache_dir`` set, each
    # trace unit is content-addressed (repro.pipeline.replay.
    # unit_digest) and its shard result persisted in the store's
    # ``unit_results`` table; re-audits recompute only units whose
    # bytes (or processing epoch) changed and merge the rest from
    # cache.  Output is byte-identical either way — merge folds
    # per-unit results exactly as it folds sub-shards.
    incremental: bool = True
    # Graceful degradation (``--keep-going``): quarantine units that
    # fail decode (and poison units that crash workers) into
    # ``EngineOutput.degraded`` instead of aborting.  False keeps
    # today's fail-fast behaviour (``--strict``, the parity-CI
    # default).
    keep_going: bool = False
    # Seeded fault-injection plan (``--inject-faults PROFILE``); None
    # in normal operation.
    faults: FaultPlan | None = None
    # Optional retained-event span recorder (``--spans-out FILE``):
    # the engine's orchestration and unit-store spans are mirrored
    # into it (events only — totals and metrics stay on the scoped
    # recorders, so profiles and counters are unchanged).  Worker-side
    # shard spans cannot cross the process boundary as events; their
    # durations still arrive via stage tables and metric snapshots.
    span_sink: "SpanRecorder | None" = None

    def __post_init__(self) -> None:
        # Remember which components are the defaults BEFORE resolving
        # them: default components are never pickled into pool tasks —
        # workers rebuild them locally (see resolve_task_stack).
        self._default_classifier = self.classifier is None
        self._default_entity_db = self.entity_db is None
        self._default_blocklists = self.blocklists is None
        self.classifier = prepare_classifier(
            self.classifier, self.cache_dir, faults=self.faults
        )
        if self.entity_db is None:
            from repro.destinations.entities import default_entity_db

            self.entity_db = default_entity_db()
        if self.blocklists is None:
            from repro.destinations.blocklists import default_blocklists

            self.blocklists = default_blocklists()

    def shard_tasks(self) -> list[ShardTask]:
        """One task per configured service, in service-spec order.

        In replay mode each task carries its service's trace units
        (replay shards by service exactly like generation does), and a
        configured service with no artifacts on disk is an error — a
        silently empty audit would read as a compliant service.
        """
        replay_units: dict[str, tuple[TraceUnit, ...]] = {}
        corpus = self.replay
        if corpus is not None and not isinstance(corpus, ReplayCorpus):
            corpus = ReplayCorpus.scan(corpus)
        if corpus is not None:
            # service_specs() silently filters against the catalog, so
            # a corpus of uncatalogued services would otherwise shard
            # to nothing and exit 0 as a spotless "audit".
            known = {spec.key for spec in self.config.service_specs()}
            unknown = sorted(set(self.config.services or ()) - known)
            if unknown:
                raise ReplayError(
                    f"service(s) {', '.join(unknown)} are not in the service "
                    "catalog; only catalog services can be audited"
                )
            replay_units = {
                spec.key: tuple(corpus.units_for(spec.key))
                for spec in self.config.service_specs()
            }
            missing = sorted(key for key, units in replay_units.items() if not units)
            if missing:
                raise ReplayError(
                    f"no artifacts for configured service(s) {', '.join(missing)} "
                    f"in {corpus.directory} (found: {', '.join(corpus.services())})"
                )
        return [
            ShardTask(
                service=spec.key,
                config=self.config.for_service(spec.key),
                classifier=self.classifier,
                confidence_threshold=self.confidence_threshold,
                entity_db=self.entity_db,
                blocklists=self.blocklists,
                artifacts_dir=self.artifacts_dir,
                replay_units=replay_units.get(spec.key),
                keep_going=self.keep_going,
                faults=self.faults,
            )
            for spec in self.config.service_specs()
        ]

    @staticmethod
    def merge(results: list[ShardResult]) -> EngineOutput:
        """Fold ordered shard results into corpus-wide state.

        Results must arrive in canonical order: service-spec order,
        then sub-shard (trace-unit) order within a split service.  A
        service's sub-shard results are folded exactly as one whole-
        service result would be — contacted sets union, counters sum.
        """
        flows = FlowTable()
        dataset = DatasetSummary()
        contacted: dict[str, set[str]] = {}
        raw_keys: set[str] = set()
        classified: set[str] = set()
        owners: dict[tuple[str, str], str | None] = {}
        trace_count = 0
        hits = misses = store_hits = store_misses = 0
        degraded: list[DegradedUnit] = []
        for result in results:
            flows.merge(result.flows)
            dataset.merge(result.dataset)
            contacted.setdefault(result.service, set()).update(result.contacted)
            raw_keys.update(result.raw_keys)
            classified.update(result.classified)
            for fqdn, owner in result.owners.items():
                owners[(result.service, fqdn)] = owner
            trace_count += result.trace_count
            hits += result.cache_hits
            misses += result.cache_misses
            store_hits += result.store_hits
            store_misses += result.store_misses
            degraded.extend(result.degraded)
        return EngineOutput(
            flows=flows,
            dataset=dataset,
            contacted=contacted,
            raw_keys=raw_keys,
            classified_keys=len(classified),
            owners=owners,
            trace_count=trace_count,
            cache_hits=hits,
            cache_misses=misses,
            store_hits=store_hits,
            store_misses=store_misses,
            degraded=degraded,
        )

    def _slim_tasks(self, tasks: list[ShardTask]) -> None:
        """Strip default components from pool-bound tasks.

        The catalog-backed default classifier stack, entity database
        and blocklists dominate a task's pickle; workers rebuild them
        locally instead (memoized per process).  Components the caller
        customized are kept on the task and travel by pickle as
        before.
        """
        for task in tasks:
            if self._default_classifier:
                task.classifier = None
                task.cache_dir = self.cache_dir
            if self._default_entity_db:
                task.entity_db = None
            if self._default_blocklists:
                task.blocklists = None

    def _unit_result_scope(self) -> tuple[ClassificationStore, str] | None:
        """The ``(store, epoch)`` unit-result reuse runs under, if any.

        Incremental mode needs a persistent store to keep results in
        (``cache_dir``) and components the epoch can *name*: the
        default classifier stack, entity database and blocklists.  A
        caller-supplied component has no stable fingerprint — results
        computed under it must never be served to a different one — so
        custom stacks fall back to full recompute (byte-identical
        output, just no reuse).  A store that cannot be opened also
        degrades to full recompute: the cache is a performance
        artifact, never a prerequisite.
        """
        if not self.incremental or self.replay is None or self.cache_dir is None:
            return None
        if not (
            self._default_classifier
            and self._default_entity_db
            and self._default_blocklists
        ):
            return None
        classifier = self.classifier
        if not isinstance(classifier, PersistentClassifier):
            return None
        try:
            store = classifier.store
        except StoreError as exc:
            print(
                f"warning: incremental replay disabled: {exc}", file=sys.stderr
            )
            return None
        return store, unit_result_epoch(
            classifier.inner.name, self.confidence_threshold
        )

    def _partition_replay_tasks(
        self,
        tasks: list[ShardTask],
        store: ClassificationStore,
        epoch: str,
        timer: StageTimer,
    ) -> tuple[list[PackedShardResult | None], list[ShardTask], list[str]] | None:
        """Split replay tasks into cached unit results and dirty tasks.

        Returns ``(slots, dirty_tasks, dirty_digests)`` — ``slots`` has
        one entry per trace unit in canonical order (service-spec
        order, then unit order): a cached packed result, or ``None``
        meaning "take the next dirty task's result".  Every dirty unit
        becomes its own single-unit :class:`ShardTask` so its result is
        individually cacheable for the next run.  ``None`` (the whole
        return) means the store failed mid-partition and the caller
        should fall back to full recompute.
        """
        slots: list[PackedShardResult | None] = []
        dirty_tasks: list[ShardTask] = []
        dirty_digests: list[str] = []
        for task in tasks:
            units = task.replay_units or ()
            with timer.stage("digest"):
                digests = [unit_digest(unit) for unit in units]
            try:
                with timer.stage("store_get"):
                    found = store.get_unit_results(epoch, digests)
            except StoreError as exc:
                print(
                    f"warning: incremental replay disabled: {exc}",
                    file=sys.stderr,
                )
                return None
            corrupt: list[str] = []
            for part, (unit, digest) in enumerate(zip(units, digests)):
                payload = found.get(digest)
                packed = (
                    _decode_unit_payload(payload, task.service)
                    if payload is not None
                    else None
                )
                if payload is not None and packed is None:
                    corrupt.append(digest)
                if packed is not None:
                    _UNIT_STORE_HITS.inc()
                    slots.append(packed)
                    continue
                slots.append(None)
                dirty_tasks.append(
                    dataclasses.replace(
                        task,
                        replay_units=(unit,),
                        part=part,
                        estimated_cost=_replay_unit_cost(unit),
                    )
                )
                dirty_digests.append(digest)
            if corrupt:
                try:
                    store.delete_unit_results(corrupt)
                # repro-lint: disable=X-SWALLOW — quarantine cleanup is cosmetic; undeleted corrupt rows stay invisible to lookups anyway
                except StoreError:
                    pass
        return slots, dirty_tasks, dirty_digests

    @staticmethod
    def _unit_flush_hook(
        store: ClassificationStore,
        epoch: str,
        digests: list[str],
        timer: StageTimer,
    ) -> Callable:
        """The per-unit write-through hook for ``map_shards(on_result=)``.

        Crash-safe resume is built on flushing *as results complete*,
        not at run end: every unit result reaches the store the moment
        its shard finishes, so a SIGKILL mid-run loses only in-flight
        work and ``audit --resume`` reuses everything already
        persisted.  Best-effort by contract — the first store failure
        disables flushing with one warning (this run's audit is
        unaffected; only the next run's warm start is lost).  Degraded
        results are never cached: a quarantined unit is re-attempted
        on every run.
        """
        state = {"disabled": False}

        def flush(index: int, raw) -> None:
            if state["disabled"]:
                return
            packed = (
                raw
                if isinstance(raw, PackedShardResult)
                else pack_shard_result(raw)
            )
            if packed.degraded:
                return
            if packed.metrics is not None:
                # Never persist telemetry: a later run merging this
                # unit from cache did none of the work the snapshot
                # describes.
                packed = dataclasses.replace(packed, metrics=None)
            with timer.stage("store_put"):
                try:
                    store.put_unit_results(
                        epoch,
                        [(digests[index], packed.service, pickle.dumps(packed))],
                    )
                except StoreError as exc:
                    state["disabled"] = True
                    print(
                        f"warning: could not persist unit results: {exc}",
                        file=sys.stderr,
                    )

        return flush

    def _resolve_crashes(
        self,
        raw_results: list,
        work: Callable,
        degraded: list[DegradedUnit],
        flush: Callable | None,
    ) -> list:
        """Turn :class:`ShardCrash` slots into results, quarantine, or error.

        For each shard whose worker died on every pool attempt: bisect
        its replay units to isolate the poison (see
        :func:`_isolate_poison_units`), then run the clean remainder
        in-process sequentially — the most robust executor there is.
        Poison units raise in strict mode (naming unit, path, digest)
        and become ``stage="process"`` :class:`DegradedUnit` records
        under ``--keep-going``.  A crash with no isolatable poison
        (transient environmental failure that outlived the retries, or
        a generated — unit-less — shard) falls back to in-process for
        the whole shard.  Slots whose every unit was quarantined
        become ``None`` (dropped before merge).
        """
        resolved = list(raw_results)
        for index, raw in enumerate(raw_results):
            if not isinstance(raw, ShardCrash):
                continue
            task = raw.task
            units = task.replay_units if isinstance(task, ShardTask) else None
            if units is None:
                # Nothing to bisect: retry the whole shard in-process.
                resolved[index] = work(task)
                _invoke_on_result(flush, index, resolved[index])
                continue
            poisons = _isolate_poison_units(task, work)
            poison_names = {unit.meta.name for unit in poisons}
            if poisons and not self.keep_going:
                unit = poisons[0]
                source = unit.har if unit.har is not None else unit.pcap
                raise ReplayError(
                    f"worker process died repeatedly while processing "
                    f"unit {unit.meta.name!r} [artifact {source}, digest "
                    f"{unit_digest_or_placeholder(unit)}; {raw.error}; "
                    "use --keep-going to quarantine this unit and continue]"
                )
            for unit in poisons:
                degraded.append(
                    _degraded_for_unit(
                        task.service,
                        unit,
                        stage="process",
                        error="WorkerCrash",
                        detail=(
                            "worker process died while processing this "
                            f"unit ({raw.error})"
                        ),
                    )
                )
            remainder = tuple(
                unit for unit in units if unit.meta.name not in poison_names
            )
            if not remainder:
                resolved[index] = None
                continue
            resolved[index] = work(
                dataclasses.replace(task, replay_units=remainder)
            )
            _invoke_on_result(flush, index, resolved[index])
        return resolved

    def _thread_task_classifiers(self, tasks: list[ShardTask]) -> None:
        """Give every thread-pool task an isolated classifier stack.

        SQLite connections must not cross threads, and the persistent
        layer's counters are unsynchronized — so each task gets its
        own :class:`PersistentClassifier` over the same store file
        (connections open lazily in the worker thread).  The inner
        classifier is shared: it is read-only after warm-up, and
        classification is per-key pure.
        """
        for task in tasks:
            classifier = task.classifier
            if isinstance(classifier, PersistentClassifier):
                task.classifier = PersistentClassifier(
                    classifier.inner, classifier.path, faults=classifier.faults
                )

    def _stage_timer(self) -> StageTimer:
        """A stage timer, mirroring its spans into ``span_sink``."""
        if self.span_sink is None:
            return StageTimer()
        return StageTimer(SpanRecorder(sink=self.span_sink))

    def run(self) -> EngineOutput:
        timer = self._stage_timer()
        # Engine-side per-shard-stage time (digesting, unit-result
        # store round-trips) — merged into the shards' stage table.
        unit_stages = self._stage_timer()
        slots: list[PackedShardResult | None] | None = None
        dirty_digests: list[str] = []
        unit_store: ClassificationStore | None = None
        epoch = ""
        with timer.stage("shard_setup"):
            executor = executor_for(
                self.jobs, self.executor, replay=self.replay is not None
            )
            _RUNS.labels(executor.kind).inc()
            tasks = self.shard_tasks()
            scope = self._unit_result_scope()
            if scope is not None:
                unit_store, epoch = scope
                partition = self._partition_replay_tasks(
                    tasks, unit_store, epoch, unit_stages
                )
                if partition is None:
                    unit_store = None
                else:
                    # From here on ``tasks`` is the dirty set only —
                    # one single-unit task per unit to recompute.
                    slots, tasks, dirty_digests = partition
            packed = False
            if isinstance(executor, SequentialExecutor):
                # In-process shards can share one classification
                # cache, so keys common to several services classify
                # once per corpus (results are unchanged:
                # classification is per-key pure).
                shared = CachingClassifier.wrap(self.classifier)
                for task in tasks:
                    task.classifier = shared
            else:
                if slots is None:
                    # Size-balance the pool: split cost-skewed
                    # services into sub-shards and let the executor
                    # run them unordered.  (Incremental dirty tasks
                    # are already single-unit — nothing to split;
                    # their costs were stamped for LPT submission.)
                    tasks = split_shard_tasks(tasks, executor.jobs)
                if isinstance(executor, ProcessPoolShardExecutor):
                    self._slim_tasks(tasks)
                    packed = True
                else:
                    self._thread_task_classifiers(tasks)
        work = _process_shard_packed if packed else process_shard
        _TASKS_DISPATCHED.inc(len(tasks))
        # Crash-safe resume: in incremental mode every fresh unit
        # result is flushed to the store the moment its shard
        # completes, so an interrupted run (even SIGKILL) leaves
        # everything already computed for ``--resume`` to reuse.
        flush = (
            self._unit_flush_hook(unit_store, epoch, dirty_digests, unit_stages)
            if unit_store is not None
            else None
        )
        with timer.stage("execute"):
            raw_results = executor.map_shards(tasks, work=work, on_result=flush)
        crash_degraded: list[DegradedUnit] = []
        if any(isinstance(raw, ShardCrash) for raw in raw_results):
            raw_results = self._resolve_crashes(
                raw_results, work, crash_degraded, flush
            )
        task_bytes = result_bytes = 0
        if packed:
            # Results crossed the pool pickled; unpack (and measure
            # the IPC payloads) parent-side.  ``None`` slots are
            # fully-quarantined shards — nothing to unpack or merge.
            with timer.stage("unpack"):
                results = [
                    raw.unpack() if raw is not None else None
                    for raw in raw_results
                ]
                # Fold worker-side metric deltas into the parent
                # registry in canonical task order (raw_results is in
                # input order), so the merged telemetry is the same
                # whatever order workers finished in.  getattr guards
                # payloads unpickled from stores written before the
                # metrics field existed.
                for raw in raw_results:
                    shipped = getattr(raw, "metrics", None) if raw else None
                    if shipped is not None:
                        REGISTRY.absorb(shipped)
            task_bytes = sum(len(pickle.dumps(task)) for task in tasks)
            result_bytes = sum(
                len(pickle.dumps(raw)) for raw in raw_results if raw is not None
            )
        else:
            results = raw_results
        unit_hits = unit_misses = 0
        if slots is not None:
            unit_hits = sum(1 for cached in slots if cached is not None)
            unit_misses = sum(1 for result in results if result is not None)
            # Weave cached and fresh results back into canonical
            # order (service-spec order, then unit order) — the order
            # merge requires.  merge folds per-unit results exactly
            # as it folds sub-shards, so output bytes cannot depend
            # on what was cached.  A ``None`` fresh result is a
            # quarantined unit: it contributes nothing, exactly as if
            # the unit were absent from the corpus.
            with timer.stage("unpack"):
                dirty_iter = iter(results)
                woven: list[ShardResult] = []
                for cached in slots:
                    if cached is not None:
                        woven.append(_cached_shard_result(cached))
                        continue
                    fresh = next(dirty_iter)
                    if fresh is not None:
                        woven.append(fresh)
                results = woven
        else:
            results = [result for result in results if result is not None]
        with timer.stage("merge"):
            merged = self.merge(results)
        merged.degraded.extend(crash_degraded)
        _UNITS_CACHED.inc(unit_hits)
        _UNITS_DIRTY.inc(unit_misses)
        _DEGRADED_UNITS.inc(len(merged.degraded))
        stages = StageTimer()
        for result in results:
            stages.merge(result.stage_times)
        stages.merge(unit_stages.times)
        merged.unit_hits = unit_hits
        merged.unit_misses = unit_misses
        merged.profile = {
            "executor": executor.kind,
            "jobs": executor.jobs,
            "tasks": len(tasks),
            "shard_setup_s": round(timer.get("shard_setup"), 6),
            "execute_s": round(timer.get("execute"), 6),
            "unpack_s": round(timer.get("unpack"), 6),
            "merge_s": round(timer.get("merge"), 6),
            "task_bytes": task_bytes,
            "result_bytes": result_bytes,
            "stages": stages.as_dict(),
            # Schema-optional run-summary extras (like unit_hits below):
            # what the CLI's --verbose one-liner reports without
            # re-deriving engine state downstream.
            "traces": merged.trace_count,
            "store_hits": merged.store_hits,
        }
        if slots is not None:
            # Extra (schema-optional) keys: only incremental runs
            # carry them, so profiles keep answering "was unit reuse
            # active, and how much did it cover?"
            merged.profile["unit_hits"] = unit_hits
            merged.profile["unit_misses"] = unit_misses
        # Parallel shards write through the shared store file; the
        # parent process appends the run's merged counters so
        # ``cache stats`` can report per-run hit rates.
        record_run_stats(
            self.classifier,
            memory_hits=merged.cache_hits,
            store_hits=merged.store_hits,
            misses=merged.store_misses,
        )
        return merged
