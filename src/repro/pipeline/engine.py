"""Parallel sharded audit engine.

The corpus shards naturally by service: trace generation is seeded per
``(seed, service, platform, kind, age)``, the beacon cursor is
per-service, and classification is a pure function of the key — so one
service's capture → parse → classify → flow-build stage never observes
another's state.  The engine exploits that:

1. **shard** — one :class:`ShardTask` per configured service;
2. **capture/parse/classify/flow-build** — :func:`process_shard` runs
   the whole per-service stage and returns a :class:`ShardResult`;
3. **merge** — shard results fold into one :class:`FlowTable` and
   :class:`DatasetSummary` in service-spec order, so the merged state
   is byte-for-byte what the sequential loop produces;
4. **audit/linkability** — downstream analyses run on the merged state
   (in :class:`repro.pipeline.diffaudit.DiffAudit`).

Executors decide *where* stage 2 runs: :class:`SequentialExecutor`
in-process (deterministic fallback, zero overhead), or
:class:`ProcessPoolShardExecutor` across worker processes
(``--jobs N``).

Parallel scheduling is size-balanced: per-service shards are badly
cost-skewed (a heavy service can cost more than the rest of the corpus
combined), so the engine estimates every shard's cost — trace-unit
packet volume for generated corpora, artifact byte sizes for replayed
ones — splits oversized service shards into contiguous sub-shards of
trace units (:func:`split_shard_tasks`), and submits the lot to the
pool unordered, largest first (LPT).  Results are reassembled into the
canonical service/unit order before merging, so sequential and
parallel runs stay byte-identical no matter how workers were
scheduled.  Splitting is safe because a skipped trace unit still
advances cross-unit generator state (see
:meth:`repro.services.generator.TrafficGenerator.generate_service`),
making every sub-shard's traffic identical to its slice of a whole-
service run.

With ``cache_dir`` set, classifications additionally persist in a
process-safe SQLite store (:mod:`repro.datatypes.store`) shared by
every shard worker and every run: shards drain their cache misses
through per-trace batches, warm re-runs never reach the inner
classifier, and results stay byte-identical either way.
"""

from __future__ import annotations

import dataclasses
import math
import signal
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Protocol

from repro.datatypes.base import Classifier
from repro.datatypes.cache import CachingClassifier
from repro.datatypes.extract import extract_from_request
from repro.datatypes.store import PersistentClassifier, StoreError, store_path_for
from repro.destinations.blocklists import BlockListCollection
from repro.destinations.entities import EntityDatabase
from repro.destinations.party import DestinationLabeler
from repro.flows.builder import FlowBuilder
from repro.flows.dataflow import FlowTable
from repro.pipeline.corpus import CorpusProcessor, ParsedTrace
from repro.pipeline.dataset import DatasetSummary
from repro.pipeline.replay import (
    ReplayCorpus,
    ReplayError,
    TraceUnit,
    load_parsed_trace,
    merge_manifest_traces,
    read_manifest,
    trace_record,
    write_manifest,
)
from repro.services.catalog import ServiceSpec
from repro.services.generator import CorpusConfig


@dataclass
class ShardTask:
    """Everything one worker needs to process one service shard.

    The task is self-contained and picklable: a worker process
    reconstructs the processor, labeler and flow builder from it
    without sharing any state with the parent.

    With ``replay_units`` set, the shard's traces come from artifact
    files on disk instead of the in-memory generate → capture → parse
    loop; everything downstream of trace parsing is identical.

    A task may cover the whole service (``unit_range is None``,
    ``part == 0``) or one contiguous sub-shard of its trace units —
    the scheduler splits oversized services so worker wall time
    balances.  ``estimated_cost`` is the scheduler's relative cost
    guess, used only for splitting and largest-first submission.
    """

    service: str
    config: CorpusConfig  # already restricted to this one service
    classifier: Classifier
    confidence_threshold: float
    entity_db: EntityDatabase
    blocklists: BlockListCollection
    artifacts_dir: Path | None = None
    replay_units: tuple[TraceUnit, ...] | None = None
    unit_range: tuple[int, int] | None = None  # [start, stop) trace units
    part: int = 0  # sub-shard index within the service (canonical order)
    estimated_cost: float = 0.0


@dataclass
class ShardResult:
    """One service's slice of the corpus, ready to merge."""

    service: str
    flows: FlowTable
    dataset: DatasetSummary
    contacted: set[str]
    raw_keys: set[str]
    classified: set[str]  # unique keys this shard's builder classified
    owners: dict[str, str | None] = field(default_factory=dict)  # fqdn -> owner
    trace_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Persistent-store layer counters (zero without --cache-dir): of
    # the in-memory misses above, how many the disk store answered vs
    # how many reached the inner classifier.
    store_hits: int = 0
    store_misses: int = 0


def default_classifier() -> Classifier:
    """The paper's final labeling scheme: majority-average @0.8."""
    from repro.datatypes.majority import MajorityVoteClassifier

    return MajorityVoteClassifier(confidence_mode="avg")


def prepare_classifier(
    classifier: Classifier | None, cache_dir: Path | str | None
) -> Classifier:
    """The classifier stack every pipeline front door builds.

    Defaults, then — with a ``--cache-dir`` — layers the persistent
    store underneath, touching it eagerly so an unusable directory (a
    file, unwritable, unrecoverably corrupt) fails before any
    expensive work starts; store failures *mid-run* degrade to
    uncached instead.  Shared by the batch engine and the streaming
    session so the two can never wire the store differently.
    """
    if classifier is None:
        classifier = default_classifier()
    if cache_dir is not None:
        classifier = PersistentClassifier.wrap(
            classifier, store_path_for(cache_dir)
        )
        classifier.store
    return classifier


def record_run_stats(
    classifier: Classifier,
    *,
    memory_hits: int,
    store_hits: int,
    misses: int,
) -> None:
    """Append one run's merged counters to the persistent store.

    Best-effort by contract: the audit already succeeded, so a store
    failure here warns instead of discarding the result.  No-op
    without a persistent layer.
    """
    if not isinstance(classifier, PersistentClassifier):
        return
    try:
        classifier.store.record_run(
            classifier.inner.name,
            memory_hits=memory_hits,
            store_hits=store_hits,
            misses=misses,
        )
    except StoreError as exc:
        print(
            f"warning: could not record run statistics: {exc}",
            file=sys.stderr,
        )


def labeler_for(
    spec: ServiceSpec,
    entity_db: EntityDatabase,
    blocklists: BlockListCollection,
) -> DestinationLabeler:
    """One service's destination labeler (shared by shard and audit)."""
    return DestinationLabeler(
        service_names=spec.first_party_names,
        first_party_owner=spec.first_party_owner,
        entity_db=entity_db,
        blocklists=blocklists,
    )


def shard_trace_source(task: ShardTask) -> "Iterable[ParsedTrace]":
    """Where a shard's parsed traces come from: replayed artifact
    files when the task carries replay units, the in-memory generate →
    capture → parse loop otherwise.  Both stream one trace at a time."""
    if task.replay_units is not None:
        return (load_parsed_trace(unit) for unit in task.replay_units)
    return CorpusProcessor(
        config=task.config,
        artifacts_dir=task.artifacts_dir,
        unit_range=task.unit_range,
    )


def process_shard(task: ShardTask) -> ShardResult:
    """Run capture → parse → classify → flow-build for one service."""
    (spec,) = [s for s in task.config.service_specs() if s.key == task.service]
    labeler = labeler_for(spec, task.entity_db, task.blocklists)
    # A task may arrive with an already-cached classifier (the
    # sequential executor shares one cache across shards, so keys
    # common to several services are classified once per corpus);
    # count only this shard's hits/misses either way.
    cache = CachingClassifier.wrap(task.classifier)
    hits_before, misses_before = cache.hits, cache.misses
    # With --cache-dir the classifier stack is memory → disk store →
    # inner; snapshot the persistent layer's counters so the shard can
    # report how much of its work the store absorbed.
    persistent = cache.inner if isinstance(cache.inner, PersistentClassifier) else None
    store_hits_before = persistent.store_hits if persistent else 0
    store_misses_before = persistent.misses if persistent else 0
    builder = FlowBuilder(
        classifier=cache, confidence_threshold=task.confidence_threshold
    )

    flows = FlowTable()
    dataset = DatasetSummary()
    contacted: set[str] = set()
    raw_keys: set[str] = set()
    trace_count = 0

    for parsed in shard_trace_source(task):
        trace_count += 1
        dataset.add_trace(parsed)
        contacted.update(parsed.contacted_hosts())
        # Extract once per request, then drain the whole trace's cache
        # misses in one batched call — through a persistent layer that
        # is one disk round-trip per trace instead of one per key.
        extracted_per_request = [
            extract_from_request(request) for request in parsed.requests
        ]
        builder.prime(
            [item.key for items in extracted_per_request for item in items]
        )
        for request, extracted in zip(parsed.requests, extracted_per_request):
            observations = builder.flows_for_request(
                request,
                labeler,
                service=task.service,
                platform=parsed.meta.platform,
                kind=parsed.meta.kind,
                age=parsed.meta.age,
                extracted=extracted,
            )
            flows.extend(observations)
            raw_keys.update(item.key for item in extracted)
        # Opaque flows still label their destinations (party/ATS
        # classification does not need plaintext).
        for host in parsed.opaque_hosts:
            if host:
                labeler.label(host)

    # Register parties (and owners, for the census/alluvial lookups
    # downstream) for every contacted host so destination-only
    # (opaque) contacts count too.
    owners: dict[str, str | None] = {}
    for host in contacted:
        label = labeler.label(host)
        flows.register_party(task.service, host, label.party)
        owners[host] = label.owner

    return ShardResult(
        service=task.service,
        flows=flows,
        dataset=dataset,
        contacted=contacted,
        raw_keys=raw_keys,
        classified=builder.classified_key_set(),
        owners=owners,
        trace_count=trace_count,
        cache_hits=cache.hits - hits_before,
        cache_misses=cache.misses - misses_before,
        store_hits=(persistent.store_hits - store_hits_before) if persistent else 0,
        store_misses=(persistent.misses - store_misses_before) if persistent else 0,
    )


# ----------------------------------------------------------------------
# Size-balanced scheduling
# ----------------------------------------------------------------------

# How many cost chunks to aim for per worker.  >1 keeps the pool busy
# when estimates are imperfect: a worker that finishes a light chunk
# early picks up another instead of idling behind the heavy one.
_CHUNKS_PER_WORKER = 2


def _replay_unit_cost(unit: TraceUnit) -> float:
    """A replayed unit's cost estimate: bytes of artifact to decode."""
    cost = 0.0
    for path in (unit.har, unit.pcap, unit.keylog):
        if path is not None:
            try:
                cost += path.stat().st_size
            except OSError:
                pass  # vanished artifacts fail later, with a real error
    return cost


def shard_unit_costs(task: ShardTask) -> list[float]:
    """Per-trace-unit cost estimates for one service's shard task."""
    if task.replay_units is not None:
        return [_replay_unit_cost(unit) for unit in task.replay_units]
    from repro.services.generator import estimate_unit_costs

    (spec,) = [s for s in task.config.service_specs() if s.key == task.service]
    return estimate_unit_costs(task.config, spec)


def partition_costs(costs: list[float], parts: int) -> list[tuple[int, int]]:
    """Split indexes 0..len(costs) into ≤ ``parts`` contiguous ranges
    of near-equal estimated cost (every range non-empty, order kept)."""
    parts = max(1, min(parts, len(costs)))
    total = sum(costs)
    if parts == 1 or total <= 0:
        return [(0, len(costs))]
    ranges: list[tuple[int, int]] = []
    start = 0
    cumulative = 0.0
    cut = 1
    for index, cost in enumerate(costs):
        cumulative += cost
        remaining_units = len(costs) - (index + 1)
        if cut < parts and remaining_units >= parts - cut and (
            # this range reached its share of the total cost, or
            cumulative >= cut * total / parts
            # exactly enough units remain to keep later ranges non-empty
            or remaining_units == parts - cut
        ):
            ranges.append((start, index + 1))
            start = index + 1
            cut += 1
    ranges.append((start, len(costs)))
    return ranges


def balanced_split_plan(
    per_item_costs: list[list[float]], jobs: int
) -> list[list[tuple[int, int, float]]]:
    """For each work item, the ``(start, stop, cost)`` sub-ranges to run.

    Every item whose estimated cost exceeds its fair chunk of the
    total (total cost over ``jobs * _CHUNKS_PER_WORKER``) is split
    into contiguous unit ranges of near-equal cost; the rest stay
    whole.  Plans preserve input order, so flattening them yields the
    canonical merge order.
    """
    total = sum(sum(costs) for costs in per_item_costs)
    chunk = total / (jobs * _CHUNKS_PER_WORKER) if total > 0 and jobs > 1 else 0.0
    plans: list[list[tuple[int, int, float]]] = []
    for costs in per_item_costs:
        item_cost = sum(costs)
        parts = min(len(costs), math.ceil(item_cost / chunk)) if chunk > 0 else 1
        if parts <= 1:
            plans.append([(0, len(costs), item_cost)])
            continue
        plans.append(
            [
                (start, stop, sum(costs[start:stop]))
                for start, stop in partition_costs(costs, parts)
            ]
        )
    return plans


def _apply_split_plans(
    items: list, per_item_costs: list[list[float]], jobs: int, make_sub: Callable
) -> list:
    """Turn work items into their planned sub-items, canonical order.

    The one place the split policy is applied — audit shards and
    generate shards both go through here, so the two commands can
    never schedule differently.  ``make_sub(item, part, start, stop,
    cost)`` builds one sub-item; unsplit items just get their cost
    stamped.
    """
    out: list = []
    for item, plan in zip(items, balanced_split_plan(per_item_costs, jobs)):
        if len(plan) == 1:
            out.append(dataclasses.replace(item, estimated_cost=plan[0][2]))
            continue
        for part, (start, stop, cost) in enumerate(plan):
            out.append(make_sub(item, part, start, stop, cost))
    return out


def _shard_sub_task(
    task: ShardTask, part: int, start: int, stop: int, cost: float
) -> ShardTask:
    """One sub-shard: replay tasks carry their unit slice directly,
    generated tasks carry the ``unit_range`` the processor slices by."""
    return dataclasses.replace(
        task,
        part=part,
        unit_range=None if task.replay_units is not None else (start, stop),
        replay_units=(
            task.replay_units[start:stop] if task.replay_units is not None else None
        ),
        estimated_cost=cost,
    )


def split_shard_tasks(tasks: list[ShardTask], jobs: int) -> list[ShardTask]:
    """Split cost-skewed service shards into balanced sub-shards.

    The returned list is in canonical order — service-spec order,
    then unit order — which is the order results must merge in;
    executors are free to *run* it in any order.
    """
    if jobs <= 1:
        return tasks
    per_task_costs = [shard_unit_costs(task) for task in tasks]
    return _apply_split_plans(tasks, per_task_costs, jobs, _shard_sub_task)


@dataclass
class GenerateShard:
    """One generate-only work item (whole service or a unit slice)."""

    service: str
    config: CorpusConfig  # already restricted to this one service
    artifacts_dir: Path | None
    unit_range: tuple[int, int] | None = None
    part: int = 0
    estimated_cost: float = 0.0


def _generate_shard(shard: GenerateShard) -> list[dict]:
    """Generate + capture one shard's artifacts, skipping analysis.

    Returns one manifest record per trace, in generation order."""
    processor = CorpusProcessor(
        config=shard.config,
        artifacts_dir=shard.artifacts_dir,
        unit_range=shard.unit_range,
    )
    return [trace_record(parsed.meta) for parsed in processor]


def generate_corpus_artifacts(
    config: CorpusConfig, artifacts_dir: Path | None, jobs: int = 1
) -> int:
    """Write every trace artifact plus a manifest; returns the trace count.

    The generate-only sibling of :meth:`AuditEngine.run`: shards (and
    size-balances) the same way but stops after capture — no
    classification, labeling or flow building — since ``python -m
    repro generate`` discards those.  ``manifest.json`` records the
    corpus config and per-trace metadata in generation order, so
    ``audit --from-artifacts`` can replay the directory without
    re-deriving anything from filenames.
    """
    from repro.services.generator import estimate_unit_costs

    executor = executor_for(jobs)
    existing = read_manifest(artifacts_dir) if artifacts_dir is not None else None
    if existing is not None:
        # Fail fast on mismatched corpus knobs before writing anything.
        merge_manifest_traces(existing, config, [])
    specs = config.service_specs()
    shards = [
        GenerateShard(
            service=spec.key,
            config=config.for_service(spec.key),
            artifacts_dir=artifacts_dir,
        )
        for spec in specs
    ]
    if jobs > 1:
        per_shard_costs = [
            estimate_unit_costs(shard.config, spec)
            for shard, spec in zip(shards, specs)
        ]
        shards = _apply_split_plans(
            shards,
            per_shard_costs,
            jobs,
            lambda shard, part, start, stop, cost: dataclasses.replace(
                shard, part=part, unit_range=(start, stop), estimated_cost=cost
            ),
        )
    records = [
        record
        for shard_records in executor.map_shards(shards, work=_generate_shard)
        for record in shard_records
    ]
    generated = len(records)
    if artifacts_dir is not None:
        if existing is not None:
            # Incremental generation into an existing corpus directory:
            # keep the other services' traces instead of clobbering them.
            records = merge_manifest_traces(existing, config, records)
        write_manifest(artifacts_dir, config, records)
    return generated


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class ShardExecutor(Protocol):
    """Anything that can run shard work and return ordered results."""

    jobs: int

    def map_shards(
        self, tasks: list, work: Callable = process_shard
    ) -> list:  # pragma: no cover
        ...


@dataclass
class SequentialExecutor:
    """In-process execution — the deterministic, zero-overhead fallback."""

    jobs: int = 1

    def map_shards(self, tasks: list, work: Callable = process_shard) -> list:
        return [work(task) for task in tasks]


def _worker_ignores_interrupt() -> None:
    """Pool-worker initializer: leave Ctrl-C to the parent.

    A terminal SIGINT goes to the whole process group; without this,
    every worker dies printing its own ``KeyboardInterrupt`` traceback
    while the parent is already tearing the pool down.  The parent
    terminates workers explicitly instead.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass
class ProcessPoolShardExecutor:
    """Shard execution across worker processes.

    Tasks are *submitted* unordered — largest estimated cost first
    (LPT scheduling, the classic makespan heuristic) — and collected
    as they complete, but the returned list is always in the input
    tasks' order: the caller's canonical merge order never depends on
    worker scheduling.

    Interrupts tear down cleanly: workers ignore SIGINT, and on any
    exception in the parent (a Ctrl-C included) pending shards are
    cancelled and running workers terminated before the exception
    propagates — no traceback spew from the pool, no orphaned
    processes grinding on work nobody will collect.
    """

    jobs: int = 2

    def map_shards(self, tasks: list, work: Callable = process_shard) -> list:
        if len(tasks) <= 1:
            return SequentialExecutor().map_shards(tasks, work)
        workers = min(self.jobs, len(tasks))
        # Heaviest first; ties keep canonical order for determinism.
        submission = sorted(
            range(len(tasks)),
            key=lambda i: (-getattr(tasks[i], "estimated_cost", 0.0), i),
        )
        results: list = [None] * len(tasks)
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_ignores_interrupt
        ) as pool:
            futures = {pool.submit(work, tasks[i]): i for i in submission}
            try:
                for future in as_completed(futures):
                    results[futures[future]] = future.result()
            except BaseException:
                # Snapshot the worker list first — shutdown(wait=False)
                # nulls the executor's process table.
                processes = list((getattr(pool, "_processes", None) or {}).values())
                pool.shutdown(wait=False, cancel_futures=True)
                for process in processes:
                    process.terminate()
                raise
        return results


def executor_for(jobs: int) -> ShardExecutor:
    """Pick the executor for a ``--jobs N`` setting."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SequentialExecutor()
    return ProcessPoolShardExecutor(jobs=jobs)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


@dataclass
class EngineOutput:
    """The merged corpus-wide state the downstream audit consumes."""

    flows: FlowTable
    dataset: DatasetSummary
    contacted: dict[str, set[str]]  # service -> contacted hosts
    raw_keys: set[str]
    classified_keys: int
    owners: dict[tuple[str, str], str | None] = field(default_factory=dict)
    trace_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0  # lookups that reached the inner classifier


@dataclass
class AuditEngine:
    """Stages 1–3 of the pipeline: shard, process, merge."""

    config: CorpusConfig = field(default_factory=CorpusConfig)
    classifier: Classifier | None = None
    confidence_threshold: float = 0.8
    entity_db: EntityDatabase | None = None
    blocklists: BlockListCollection | None = None
    artifacts_dir: Path | None = None
    # Audit artifacts from disk instead of generating in-memory: a
    # directory path (scanned once here) or an already-scanned
    # ReplayCorpus (no rescan — pass this when the caller scanned the
    # directory itself, e.g. for config resolution).
    replay: "ReplayCorpus | Path | str | None" = None
    jobs: int = 1
    # Directory holding the persistent classification store
    # (``--cache-dir``): classifications persist across runs and are
    # shared by all shard workers, so a warm re-audit never calls the
    # inner classifier at all.  None: in-memory caching only.
    cache_dir: Path | str | None = None

    def __post_init__(self) -> None:
        self.classifier = prepare_classifier(self.classifier, self.cache_dir)
        if self.entity_db is None:
            from repro.destinations.entities import default_entity_db

            self.entity_db = default_entity_db()
        if self.blocklists is None:
            from repro.destinations.blocklists import default_blocklists

            self.blocklists = default_blocklists()

    def shard_tasks(self) -> list[ShardTask]:
        """One task per configured service, in service-spec order.

        In replay mode each task carries its service's trace units
        (replay shards by service exactly like generation does), and a
        configured service with no artifacts on disk is an error — a
        silently empty audit would read as a compliant service.
        """
        replay_units: dict[str, tuple[TraceUnit, ...]] = {}
        corpus = self.replay
        if corpus is not None and not isinstance(corpus, ReplayCorpus):
            corpus = ReplayCorpus.scan(corpus)
        if corpus is not None:
            # service_specs() silently filters against the catalog, so
            # a corpus of uncatalogued services would otherwise shard
            # to nothing and exit 0 as a spotless "audit".
            known = {spec.key for spec in self.config.service_specs()}
            unknown = sorted(set(self.config.services or ()) - known)
            if unknown:
                raise ReplayError(
                    f"service(s) {', '.join(unknown)} are not in the service "
                    "catalog; only catalog services can be audited"
                )
            replay_units = {
                spec.key: tuple(corpus.units_for(spec.key))
                for spec in self.config.service_specs()
            }
            missing = sorted(key for key, units in replay_units.items() if not units)
            if missing:
                raise ReplayError(
                    f"no artifacts for configured service(s) {', '.join(missing)} "
                    f"in {corpus.directory} (found: {', '.join(corpus.services())})"
                )
        return [
            ShardTask(
                service=spec.key,
                config=self.config.for_service(spec.key),
                classifier=self.classifier,
                confidence_threshold=self.confidence_threshold,
                entity_db=self.entity_db,
                blocklists=self.blocklists,
                artifacts_dir=self.artifacts_dir,
                replay_units=replay_units.get(spec.key),
            )
            for spec in self.config.service_specs()
        ]

    @staticmethod
    def merge(results: list[ShardResult]) -> EngineOutput:
        """Fold ordered shard results into corpus-wide state.

        Results must arrive in canonical order: service-spec order,
        then sub-shard (trace-unit) order within a split service.  A
        service's sub-shard results are folded exactly as one whole-
        service result would be — contacted sets union, counters sum.
        """
        flows = FlowTable()
        dataset = DatasetSummary()
        contacted: dict[str, set[str]] = {}
        raw_keys: set[str] = set()
        classified: set[str] = set()
        owners: dict[tuple[str, str], str | None] = {}
        trace_count = 0
        hits = misses = store_hits = store_misses = 0
        for result in results:
            flows.merge(result.flows)
            dataset.merge(result.dataset)
            contacted.setdefault(result.service, set()).update(result.contacted)
            raw_keys.update(result.raw_keys)
            classified.update(result.classified)
            for fqdn, owner in result.owners.items():
                owners[(result.service, fqdn)] = owner
            trace_count += result.trace_count
            hits += result.cache_hits
            misses += result.cache_misses
            store_hits += result.store_hits
            store_misses += result.store_misses
        return EngineOutput(
            flows=flows,
            dataset=dataset,
            contacted=contacted,
            raw_keys=raw_keys,
            classified_keys=len(classified),
            owners=owners,
            trace_count=trace_count,
            cache_hits=hits,
            cache_misses=misses,
            store_hits=store_hits,
            store_misses=store_misses,
        )

    def run(self) -> EngineOutput:
        executor = executor_for(self.jobs)
        tasks = self.shard_tasks()
        if isinstance(executor, SequentialExecutor):
            # In-process shards can share one classification cache, so
            # keys common to several services classify once per corpus
            # (results are unchanged: classification is per-key pure).
            shared = CachingClassifier.wrap(self.classifier)
            for task in tasks:
                task.classifier = shared
        else:
            # Size-balance the pool: split cost-skewed services into
            # sub-shards and let the executor run them unordered.
            tasks = split_shard_tasks(tasks, self.jobs)
        merged = self.merge(executor.map_shards(tasks))
        # Parallel shards write through the shared store file; the
        # parent process appends the run's merged counters so
        # ``cache stats`` can report per-run hit rates.
        record_run_stats(
            self.classifier,
            memory_hits=merged.cache_hits,
            store_hits=merged.store_hits,
            misses=merged.store_misses,
        )
        return merged
