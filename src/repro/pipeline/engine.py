"""Parallel sharded audit engine.

The corpus shards naturally by service: trace generation is seeded per
``(seed, service, platform, kind, age)``, the beacon cursor is
per-service, and classification is a pure function of the key — so one
service's capture → parse → classify → flow-build stage never observes
another's state.  The engine exploits that:

1. **shard** — one :class:`ShardTask` per configured service;
2. **capture/parse/classify/flow-build** — :func:`process_shard` runs
   the whole per-service stage and returns a :class:`ShardResult`;
3. **merge** — shard results fold into one :class:`FlowTable` and
   :class:`DatasetSummary` in service-spec order, so the merged state
   is byte-for-byte what the sequential loop produces;
4. **audit/linkability** — downstream analyses run on the merged state
   (in :class:`repro.pipeline.diffaudit.DiffAudit`).

Executors decide *where* stage 2 runs: :class:`SequentialExecutor`
in-process (deterministic fallback, zero overhead), or
:class:`ProcessPoolShardExecutor` across worker processes
(``--jobs N``).  ``ProcessPoolExecutor.map`` preserves input order, so
both paths merge identically.

With ``cache_dir`` set, classifications additionally persist in a
process-safe SQLite store (:mod:`repro.datatypes.store`) shared by
every shard worker and every run: shards drain their cache misses
through per-trace batches, warm re-runs never reach the inner
classifier, and results stay byte-identical either way.
"""

from __future__ import annotations

import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Protocol

from repro.datatypes.base import Classifier
from repro.datatypes.cache import CachingClassifier
from repro.datatypes.extract import extract_from_request
from repro.datatypes.store import PersistentClassifier, StoreError, store_path_for
from repro.destinations.blocklists import BlockListCollection
from repro.destinations.entities import EntityDatabase
from repro.destinations.party import DestinationLabeler
from repro.flows.builder import FlowBuilder
from repro.flows.dataflow import FlowTable
from repro.pipeline.corpus import CorpusProcessor, ParsedTrace
from repro.pipeline.dataset import DatasetSummary
from repro.pipeline.replay import (
    ReplayCorpus,
    ReplayError,
    TraceUnit,
    load_parsed_trace,
    merge_manifest_traces,
    read_manifest,
    trace_record,
    write_manifest,
)
from repro.services.catalog import ServiceSpec
from repro.services.generator import CorpusConfig


@dataclass
class ShardTask:
    """Everything one worker needs to process one service shard.

    The task is self-contained and picklable: a worker process
    reconstructs the processor, labeler and flow builder from it
    without sharing any state with the parent.

    With ``replay_units`` set, the shard's traces come from artifact
    files on disk instead of the in-memory generate → capture → parse
    loop; everything downstream of trace parsing is identical.
    """

    service: str
    config: CorpusConfig  # already restricted to this one service
    classifier: Classifier
    confidence_threshold: float
    entity_db: EntityDatabase
    blocklists: BlockListCollection
    artifacts_dir: Path | None = None
    replay_units: tuple[TraceUnit, ...] | None = None


@dataclass
class ShardResult:
    """One service's slice of the corpus, ready to merge."""

    service: str
    flows: FlowTable
    dataset: DatasetSummary
    contacted: set[str]
    raw_keys: set[str]
    classified: set[str]  # unique keys this shard's builder classified
    owners: dict[str, str | None] = field(default_factory=dict)  # fqdn -> owner
    trace_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Persistent-store layer counters (zero without --cache-dir): of
    # the in-memory misses above, how many the disk store answered vs
    # how many reached the inner classifier.
    store_hits: int = 0
    store_misses: int = 0


def default_classifier() -> Classifier:
    """The paper's final labeling scheme: majority-average @0.8."""
    from repro.datatypes.majority import MajorityVoteClassifier

    return MajorityVoteClassifier(confidence_mode="avg")


def labeler_for(
    spec: ServiceSpec,
    entity_db: EntityDatabase,
    blocklists: BlockListCollection,
) -> DestinationLabeler:
    """One service's destination labeler (shared by shard and audit)."""
    return DestinationLabeler(
        service_names=spec.first_party_names,
        first_party_owner=spec.first_party_owner,
        entity_db=entity_db,
        blocklists=blocklists,
    )


def shard_trace_source(task: ShardTask) -> "Iterable[ParsedTrace]":
    """Where a shard's parsed traces come from: replayed artifact
    files when the task carries replay units, the in-memory generate →
    capture → parse loop otherwise.  Both stream one trace at a time."""
    if task.replay_units is not None:
        return (load_parsed_trace(unit) for unit in task.replay_units)
    return CorpusProcessor(config=task.config, artifacts_dir=task.artifacts_dir)


def process_shard(task: ShardTask) -> ShardResult:
    """Run capture → parse → classify → flow-build for one service."""
    (spec,) = [s for s in task.config.service_specs() if s.key == task.service]
    labeler = labeler_for(spec, task.entity_db, task.blocklists)
    # A task may arrive with an already-cached classifier (the
    # sequential executor shares one cache across shards, so keys
    # common to several services are classified once per corpus);
    # count only this shard's hits/misses either way.
    cache = CachingClassifier.wrap(task.classifier)
    hits_before, misses_before = cache.hits, cache.misses
    # With --cache-dir the classifier stack is memory → disk store →
    # inner; snapshot the persistent layer's counters so the shard can
    # report how much of its work the store absorbed.
    persistent = cache.inner if isinstance(cache.inner, PersistentClassifier) else None
    store_hits_before = persistent.store_hits if persistent else 0
    store_misses_before = persistent.misses if persistent else 0
    builder = FlowBuilder(
        classifier=cache, confidence_threshold=task.confidence_threshold
    )

    flows = FlowTable()
    dataset = DatasetSummary()
    contacted: set[str] = set()
    raw_keys: set[str] = set()
    trace_count = 0

    for parsed in shard_trace_source(task):
        trace_count += 1
        dataset.add_trace(parsed)
        contacted.update(parsed.contacted_hosts())
        # Extract once per request, then drain the whole trace's cache
        # misses in one batched call — through a persistent layer that
        # is one disk round-trip per trace instead of one per key.
        extracted_per_request = [
            extract_from_request(request) for request in parsed.requests
        ]
        builder.prime(
            [item.key for items in extracted_per_request for item in items]
        )
        for request, extracted in zip(parsed.requests, extracted_per_request):
            observations = builder.flows_for_request(
                request,
                labeler,
                service=task.service,
                platform=parsed.meta.platform,
                kind=parsed.meta.kind,
                age=parsed.meta.age,
                extracted=extracted,
            )
            flows.extend(observations)
            raw_keys.update(item.key for item in extracted)
        # Opaque flows still label their destinations (party/ATS
        # classification does not need plaintext).
        for host in parsed.opaque_hosts:
            if host:
                labeler.label(host)

    # Register parties (and owners, for the census/alluvial lookups
    # downstream) for every contacted host so destination-only
    # (opaque) contacts count too.
    owners: dict[str, str | None] = {}
    for host in contacted:
        label = labeler.label(host)
        flows.register_party(task.service, host, label.party)
        owners[host] = label.owner

    return ShardResult(
        service=task.service,
        flows=flows,
        dataset=dataset,
        contacted=contacted,
        raw_keys=raw_keys,
        classified=builder.classified_key_set(),
        owners=owners,
        trace_count=trace_count,
        cache_hits=cache.hits - hits_before,
        cache_misses=cache.misses - misses_before,
        store_hits=(persistent.store_hits - store_hits_before) if persistent else 0,
        store_misses=(persistent.misses - store_misses_before) if persistent else 0,
    )


def _generate_shard(shard: tuple[CorpusConfig, Path | None]) -> list[dict]:
    """Generate + capture one service's artifacts, skipping analysis.

    Returns one manifest record per trace, in generation order."""
    config, artifacts_dir = shard
    processor = CorpusProcessor(config=config, artifacts_dir=artifacts_dir)
    return [trace_record(parsed.meta) for parsed in processor]


def generate_corpus_artifacts(
    config: CorpusConfig, artifacts_dir: Path | None, jobs: int = 1
) -> int:
    """Write every trace artifact plus a manifest; returns the trace count.

    The generate-only sibling of :meth:`AuditEngine.run`: shards the
    same way but stops after capture — no classification, labeling or
    flow building — since ``python -m repro generate`` discards those.
    ``manifest.json`` records the corpus config and per-trace metadata
    in generation order, so ``audit --from-artifacts`` can replay the
    directory without re-deriving anything from filenames.
    """
    executor = executor_for(jobs)
    existing = read_manifest(artifacts_dir) if artifacts_dir is not None else None
    if existing is not None:
        # Fail fast on mismatched corpus knobs before writing anything.
        merge_manifest_traces(existing, config, [])
    shards = [
        (config.for_service(spec.key), artifacts_dir)
        for spec in config.service_specs()
    ]
    records = [
        record
        for shard_records in executor.map_shards(shards, work=_generate_shard)
        for record in shard_records
    ]
    generated = len(records)
    if artifacts_dir is not None:
        if existing is not None:
            # Incremental generation into an existing corpus directory:
            # keep the other services' traces instead of clobbering them.
            records = merge_manifest_traces(existing, config, records)
        write_manifest(artifacts_dir, config, records)
    return generated


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


class ShardExecutor(Protocol):
    """Anything that can run shard work and return ordered results."""

    jobs: int

    def map_shards(
        self, tasks: list, work: Callable = process_shard
    ) -> list:  # pragma: no cover
        ...


@dataclass
class SequentialExecutor:
    """In-process execution — the deterministic, zero-overhead fallback."""

    jobs: int = 1

    def map_shards(self, tasks: list, work: Callable = process_shard) -> list:
        return [work(task) for task in tasks]


@dataclass
class ProcessPoolShardExecutor:
    """Shard execution across worker processes.

    ``ProcessPoolExecutor.map`` yields results in submission order, so
    the merge downstream is independent of worker scheduling.
    """

    jobs: int = 2

    def map_shards(self, tasks: list, work: Callable = process_shard) -> list:
        if len(tasks) <= 1:
            return SequentialExecutor().map_shards(tasks, work)
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(work, tasks))


def executor_for(jobs: int) -> ShardExecutor:
    """Pick the executor for a ``--jobs N`` setting."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SequentialExecutor()
    return ProcessPoolShardExecutor(jobs=jobs)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


@dataclass
class EngineOutput:
    """The merged corpus-wide state the downstream audit consumes."""

    flows: FlowTable
    dataset: DatasetSummary
    contacted: dict[str, set[str]]  # service -> contacted hosts
    raw_keys: set[str]
    classified_keys: int
    owners: dict[tuple[str, str], str | None] = field(default_factory=dict)
    trace_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0  # lookups that reached the inner classifier


@dataclass
class AuditEngine:
    """Stages 1–3 of the pipeline: shard, process, merge."""

    config: CorpusConfig = field(default_factory=CorpusConfig)
    classifier: Classifier | None = None
    confidence_threshold: float = 0.8
    entity_db: EntityDatabase | None = None
    blocklists: BlockListCollection | None = None
    artifacts_dir: Path | None = None
    # Audit artifacts from disk instead of generating in-memory: a
    # directory path (scanned once here) or an already-scanned
    # ReplayCorpus (no rescan — pass this when the caller scanned the
    # directory itself, e.g. for config resolution).
    replay: "ReplayCorpus | Path | str | None" = None
    jobs: int = 1
    # Directory holding the persistent classification store
    # (``--cache-dir``): classifications persist across runs and are
    # shared by all shard workers, so a warm re-audit never calls the
    # inner classifier at all.  None: in-memory caching only.
    cache_dir: Path | str | None = None

    def __post_init__(self) -> None:
        if self.classifier is None:
            self.classifier = default_classifier()
        if self.cache_dir is not None:
            self.classifier = PersistentClassifier.wrap(
                self.classifier, store_path_for(self.cache_dir)
            )
            # Fail fast on an unusable --cache-dir (a file, unwritable,
            # unrecoverably corrupt) before any expensive work starts;
            # store failures *mid-run* degrade to uncached instead.
            self.classifier.store
        if self.entity_db is None:
            from repro.destinations.entities import default_entity_db

            self.entity_db = default_entity_db()
        if self.blocklists is None:
            from repro.destinations.blocklists import default_blocklists

            self.blocklists = default_blocklists()

    def shard_tasks(self) -> list[ShardTask]:
        """One task per configured service, in service-spec order.

        In replay mode each task carries its service's trace units
        (replay shards by service exactly like generation does), and a
        configured service with no artifacts on disk is an error — a
        silently empty audit would read as a compliant service.
        """
        replay_units: dict[str, tuple[TraceUnit, ...]] = {}
        corpus = self.replay
        if corpus is not None and not isinstance(corpus, ReplayCorpus):
            corpus = ReplayCorpus.scan(corpus)
        if corpus is not None:
            # service_specs() silently filters against the catalog, so
            # a corpus of uncatalogued services would otherwise shard
            # to nothing and exit 0 as a spotless "audit".
            known = {spec.key for spec in self.config.service_specs()}
            unknown = sorted(set(self.config.services or ()) - known)
            if unknown:
                raise ReplayError(
                    f"service(s) {', '.join(unknown)} are not in the service "
                    "catalog; only catalog services can be audited"
                )
            replay_units = {
                spec.key: tuple(corpus.units_for(spec.key))
                for spec in self.config.service_specs()
            }
            missing = sorted(key for key, units in replay_units.items() if not units)
            if missing:
                raise ReplayError(
                    f"no artifacts for configured service(s) {', '.join(missing)} "
                    f"in {corpus.directory} (found: {', '.join(corpus.services())})"
                )
        return [
            ShardTask(
                service=spec.key,
                config=self.config.for_service(spec.key),
                classifier=self.classifier,
                confidence_threshold=self.confidence_threshold,
                entity_db=self.entity_db,
                blocklists=self.blocklists,
                artifacts_dir=self.artifacts_dir,
                replay_units=replay_units.get(spec.key),
            )
            for spec in self.config.service_specs()
        ]

    @staticmethod
    def merge(results: list[ShardResult]) -> EngineOutput:
        """Fold ordered shard results into corpus-wide state."""
        flows = FlowTable()
        dataset = DatasetSummary()
        contacted: dict[str, set[str]] = {}
        raw_keys: set[str] = set()
        classified: set[str] = set()
        owners: dict[tuple[str, str], str | None] = {}
        trace_count = 0
        hits = misses = store_hits = store_misses = 0
        for result in results:
            flows.merge(result.flows)
            dataset.merge(result.dataset)
            contacted[result.service] = set(result.contacted)
            raw_keys.update(result.raw_keys)
            classified.update(result.classified)
            for fqdn, owner in result.owners.items():
                owners[(result.service, fqdn)] = owner
            trace_count += result.trace_count
            hits += result.cache_hits
            misses += result.cache_misses
            store_hits += result.store_hits
            store_misses += result.store_misses
        return EngineOutput(
            flows=flows,
            dataset=dataset,
            contacted=contacted,
            raw_keys=raw_keys,
            classified_keys=len(classified),
            owners=owners,
            trace_count=trace_count,
            cache_hits=hits,
            cache_misses=misses,
            store_hits=store_hits,
            store_misses=store_misses,
        )

    def run(self) -> EngineOutput:
        executor = executor_for(self.jobs)
        tasks = self.shard_tasks()
        if isinstance(executor, SequentialExecutor):
            # In-process shards can share one classification cache, so
            # keys common to several services classify once per corpus
            # (results are unchanged: classification is per-key pure).
            shared = CachingClassifier.wrap(self.classifier)
            for task in tasks:
                task.classifier = shared
        merged = self.merge(executor.map_shards(tasks))
        if isinstance(self.classifier, PersistentClassifier):
            # Parallel shards write through the shared store file; the
            # parent process appends the run's merged counters so
            # ``cache stats`` can report per-run hit rates.  A store
            # failure here must not discard the completed audit.
            try:
                self.classifier.store.record_run(
                    self.classifier.inner.name,
                    memory_hits=merged.cache_hits,
                    store_hits=merged.store_hits,
                    misses=merged.store_misses,
                )
            except StoreError as exc:
                print(
                    f"warning: could not record run statistics: {exc}",
                    file=sys.stderr,
                )
        return merged
