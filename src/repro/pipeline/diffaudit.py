"""The DiffAudit orchestrator — paper Figure 1, end to end.

``DiffAudit(config).run()`` executes the whole methodology:

1. traffic collection (simulated services → HAR/PCAP artifacts);
2. post-processing (decryption, HTTP parsing, key extraction);
3. data type classification (GPT-4 substitute, majority-avg @ 0.8 by
   default) and destination analysis (eSLD, entities, blocklists);
4. data flow construction and the differential audit;
5. linkability analysis.

Stages 1–3 run per-service inside :class:`repro.pipeline.engine.AuditEngine`
— sequentially by default, or across worker processes with ``jobs > 1``
(the CLI's ``--jobs N``).  Both paths produce identical results for the
same config: shards merge in service-spec order and classification is a
pure function of the key.

The result object carries everything the paper's tables and figures
are derived from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.audit.report import ServiceAuditReport, audit_service
from repro.datatypes.base import Classifier
from repro.destinations.blocklists import BlockListCollection
from repro.destinations.entities import EntityDatabase
from repro.flows.dataflow import FlowTable
from repro.linkability.alluvial import AlluvialEdge, alluvial_edges
from repro.linkability.analysis import (
    DestinationCensus,
    LinkabilityResult,
    destination_census,
    linkability_matrix,
    most_common_linkable_set,
)
from repro.model import TraceColumn
from repro.ontology.nodes import Level3
from repro.pipeline.dataset import DatasetSummary
from repro.pipeline.engine import AuditEngine, labeler_for
from repro.pipeline.profile import profile_document
from repro.pipeline.replay import ReplayCorpus
from repro.services.generator import CorpusConfig


@dataclass
class DiffAuditResult:
    """Everything one DiffAudit run concludes."""

    config: CorpusConfig
    flows: FlowTable
    dataset: DatasetSummary
    audits: dict[str, ServiceAuditReport]
    linkability: dict[tuple[str, TraceColumn], LinkabilityResult]
    census: DestinationCensus
    alluvial: list[AlluvialEdge]
    common_linkable_set: frozenset[Level3]
    common_linkable_count: int
    classified_keys: int
    unique_data_types: int
    # Units quarantined under --keep-going, sorted (service, unit) for
    # stable reporting.  Empty on clean runs and in strict mode; the
    # CLI exits 3 when non-empty ("completed with degraded units").
    degraded: list = field(default_factory=list)

    def audit_for(self, service: str) -> ServiceAuditReport:
        return self.audits[service]

    def linkability_for(self, service: str, column: TraceColumn) -> LinkabilityResult:
        return self.linkability[(service, column)]


@dataclass
class DiffAudit:
    """Configured end-to-end audit run."""

    config: CorpusConfig = field(default_factory=CorpusConfig)
    classifier: Classifier | None = None
    confidence_threshold: float = 0.8
    entity_db: EntityDatabase | None = None
    blocklists: BlockListCollection | None = None
    artifacts_dir: Path | None = None
    # Replay a captured/archived artifacts directory instead of
    # generating traffic in-memory (``audit --from-artifacts DIR``):
    # a directory path, or an already-scanned ReplayCorpus so callers
    # that scanned the directory themselves (e.g. for config
    # resolution) don't pay, or race, a second scan.
    replay: ReplayCorpus | Path | str | None = None
    jobs: int = 1  # shard workers; 1 = sequential in-process
    # Executor kind for the shard stage: "auto" (sequential at jobs=1,
    # thread pool for replayed corpora, process pool otherwise) or an
    # explicit "sequential" / "thread" / "process" (``--executor``).
    executor: str = "auto"
    # Persistent classification store directory (``--cache-dir``):
    # verdicts persist across runs and across worker processes, so a
    # warm re-audit performs zero inner-classifier calls.  Results are
    # unchanged either way — classification is a pure function of the
    # key — only how often the expensive path runs.
    cache_dir: Path | str | None = None
    # Per-unit result reuse for replayed corpora (on by default, the
    # CLI's ``--no-incremental`` turns it off): with ``replay`` and
    # ``cache_dir`` both set, unchanged trace units merge straight
    # from the store's unit-result cache and only dirty units pass
    # through process_shard — byte-identical output, O(delta) work.
    incremental: bool = True
    # Graceful degradation (``--keep-going``): quarantine units that
    # fail decode or crash workers instead of aborting; the result's
    # ``degraded`` list records them.  False = fail fast
    # (``--strict``, the default).
    keep_going: bool = False
    # Seeded fault-injection plan (``--inject-faults``); None in
    # normal operation.  See repro.faults.
    faults: object | None = None
    # Optional retained-event span recorder (``--spans-out FILE``):
    # engine orchestration spans plus this orchestrator's own
    # ``assemble`` span are mirrored into it for a JSONL sidecar.
    # Observational only — results are byte-identical either way.
    span_sink: object | None = None

    def engine(self) -> AuditEngine:
        """The shard/process/merge engine this run is configured for.

        Built fresh from the current field values, so assigning e.g.
        ``audit.classifier`` after construction still takes effect.
        ``None`` components stay ``None`` here — the engine resolves
        defaults itself, and remembering *that* they were defaults is
        what lets it keep them out of worker-task pickles.
        """
        return AuditEngine(
            config=self.config,
            classifier=self.classifier,
            confidence_threshold=self.confidence_threshold,
            entity_db=self.entity_db,
            blocklists=self.blocklists,
            artifacts_dir=self.artifacts_dir,
            replay=self.replay,
            jobs=self.jobs,
            executor=self.executor,
            cache_dir=self.cache_dir,
            incremental=self.incremental,
            keep_going=self.keep_going,
            faults=self.faults,
            span_sink=self.span_sink,
        )

    def run(self) -> DiffAuditResult:
        result, _ = self.run_profiled()
        return result

    def run_profiled(self) -> tuple[DiffAuditResult, dict]:
        """Run the audit and return ``(result, profile_document)``.

        The profile attributes the run's wall time per stage (see
        :mod:`repro.pipeline.profile`); ``repro audit --profile-out``
        writes it to disk, ``repro bench`` records one per benchmark
        entry.  Profiling is always on — its cost is a handful of
        clock reads per trace.
        """
        start = time.perf_counter()
        engine = self.engine()
        merged = engine.run()
        downstream_start = time.perf_counter()
        result = assemble_result(
            self.config, merged, engine.entity_db, engine.blocklists
        )
        end = time.perf_counter()
        if self.span_sink is not None:
            self.span_sink.record(
                "assemble", end - downstream_start, start=downstream_start
            )
        profile = profile_document(
            workload="audit",
            wall_time_s=end - start,
            engine=merged.profile,
            downstream_s=end - downstream_start,
        )
        return result, profile


def assemble_result(
    config: CorpusConfig,
    merged,
    entity_db: EntityDatabase,
    blocklists: BlockListCollection,
) -> DiffAuditResult:
    """Stages 4–5 over merged engine state: audits, linkability, census.

    Shared by the batch orchestrator above and the streaming session
    (:class:`repro.stream.session.StreamAudit`) — both hand in an
    :class:`repro.pipeline.engine.EngineOutput`, so however the corpus
    was consumed, the downstream analyses and the exported result are
    assembled by exactly one code path.
    """
    specs = {spec.key: spec for spec in config.service_specs()}
    labelers = {
        key: labeler_for(spec, entity_db, blocklists)
        for key, spec in specs.items()
    }
    flows = merged.flows

    audits = {service: audit_service(flows, service) for service in specs}
    linkability = linkability_matrix(flows, services=sorted(specs))

    def owner_of(service: str, fqdn: str) -> str | None:
        # Shards already labeled every contacted host; fall back to
        # a fresh labeler only for destinations they never saw.
        key = (service, fqdn)
        if key in merged.owners:
            return merged.owners[key]
        return labelers[service].label(fqdn).owner

    census = destination_census(flows, merged.contacted, owner_of)
    edges = alluvial_edges(flows, owner_of)
    common_set, common_count = most_common_linkable_set(flows)

    return DiffAuditResult(
        config=config,
        flows=flows,
        dataset=merged.dataset,
        audits=audits,
        linkability=linkability,
        census=census,
        alluvial=edges,
        common_linkable_set=common_set,
        common_linkable_count=common_count,
        classified_keys=merged.classified_keys,
        unique_data_types=len(merged.raw_keys),
        degraded=sorted(
            merged.degraded, key=lambda d: (d.service, d.unit, d.stage)
        ),
    )
