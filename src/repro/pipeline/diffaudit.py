"""The DiffAudit orchestrator — paper Figure 1, end to end.

``DiffAudit(config).run()`` executes the whole methodology:

1. traffic collection (simulated services → HAR/PCAP artifacts);
2. post-processing (decryption, HTTP parsing, key extraction);
3. data type classification (GPT-4 substitute, majority-avg @ 0.8 by
   default) and destination analysis (eSLD, entities, blocklists);
4. data flow construction and the differential audit;
5. linkability analysis.

The result object carries everything the paper's tables and figures
are derived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.audit.report import ServiceAuditReport, audit_service
from repro.datatypes.base import Classifier
from repro.datatypes.majority import MajorityVoteClassifier
from repro.destinations.blocklists import BlockListCollection, default_blocklists
from repro.destinations.entities import EntityDatabase, default_entity_db
from repro.destinations.party import DestinationLabeler
from repro.flows.builder import FlowBuilder
from repro.flows.dataflow import FlowTable
from repro.linkability.alluvial import AlluvialEdge, alluvial_edges
from repro.linkability.analysis import (
    DestinationCensus,
    LinkabilityResult,
    destination_census,
    linkability_matrix,
    most_common_linkable_set,
)
from repro.model import TraceColumn
from repro.ontology.nodes import Level3
from repro.pipeline.corpus import CorpusProcessor
from repro.pipeline.dataset import DatasetSummary
from repro.services.catalog import ServiceSpec
from repro.services.generator import CorpusConfig


@dataclass
class DiffAuditResult:
    """Everything one DiffAudit run concludes."""

    config: CorpusConfig
    flows: FlowTable
    dataset: DatasetSummary
    audits: dict[str, ServiceAuditReport]
    linkability: dict[tuple[str, TraceColumn], LinkabilityResult]
    census: DestinationCensus
    alluvial: list[AlluvialEdge]
    common_linkable_set: frozenset[Level3]
    common_linkable_count: int
    classified_keys: int
    unique_data_types: int

    def audit_for(self, service: str) -> ServiceAuditReport:
        return self.audits[service]

    def linkability_for(self, service: str, column: TraceColumn) -> LinkabilityResult:
        return self.linkability[(service, column)]


@dataclass
class DiffAudit:
    """Configured end-to-end audit run."""

    config: CorpusConfig = field(default_factory=CorpusConfig)
    classifier: Classifier | None = None
    confidence_threshold: float = 0.8
    entity_db: EntityDatabase | None = None
    blocklists: BlockListCollection | None = None
    artifacts_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.classifier is None:
            # The paper's final labeling scheme: majority-average @0.8.
            self.classifier = MajorityVoteClassifier(confidence_mode="avg")
        if self.entity_db is None:
            self.entity_db = default_entity_db()
        if self.blocklists is None:
            self.blocklists = default_blocklists()

    def _labeler_for(self, spec: ServiceSpec) -> DestinationLabeler:
        return DestinationLabeler(
            service_names=spec.first_party_names,
            first_party_owner=spec.first_party_owner,
            entity_db=self.entity_db,
            blocklists=self.blocklists,
        )

    def run(self) -> DiffAuditResult:
        processor = CorpusProcessor(
            config=self.config, artifacts_dir=self.artifacts_dir
        )
        specs = {spec.key: spec for spec in self.config.service_specs()}
        labelers = {key: self._labeler_for(spec) for key, spec in specs.items()}
        builder = FlowBuilder(
            classifier=self.classifier,
            confidence_threshold=self.confidence_threshold,
        )

        flows = FlowTable()
        dataset = DatasetSummary()
        contacted: dict[str, set[str]] = {key: set() for key in specs}
        raw_keys: set[str] = set()

        for parsed in processor:
            dataset.add_trace(parsed)
            service = parsed.meta.service
            labeler = labelers[service]
            contacted[service].update(parsed.contacted_hosts())
            for request in parsed.requests:
                observations = builder.flows_for_request(
                    request,
                    labeler,
                    service=service,
                    platform=parsed.meta.platform,
                    kind=parsed.meta.kind,
                    age=parsed.meta.age,
                )
                flows.extend(observations)
            # Opaque flows still label their destinations (party/ATS
            # classification does not need plaintext).
            for host in parsed.opaque_hosts:
                if host:
                    labeler.label(host)
            from repro.datatypes.extract import extract_from_request

            for request in parsed.requests:
                raw_keys.update(
                    item.key for item in extract_from_request(request)
                )

        # Register parties for every contacted host so the census sees
        # destination-only (opaque) contacts too.
        for service, hosts in contacted.items():
            labeler = labelers[service]
            for host in hosts:
                label = labeler.label(host)
                flows._party_by_fqdn.setdefault((service, host), label.party)

        audits = {service: audit_service(flows, service) for service in specs}
        linkability = linkability_matrix(flows, services=sorted(specs))

        def owner_of(service: str, fqdn: str) -> str | None:
            return labelers[service].label(fqdn).owner

        census = destination_census(flows, contacted, owner_of)
        edges = alluvial_edges(flows, owner_of)
        common_set, common_count = most_common_linkable_set(flows)

        return DiffAuditResult(
            config=self.config,
            flows=flows,
            dataset=dataset,
            audits=audits,
            linkability=linkability,
            census=census,
            alluvial=edges,
            common_linkable_set=common_set,
            common_linkable_count=common_count,
            classified_keys=builder.classified_keys,
            unique_data_types=len(raw_keys),
        )
