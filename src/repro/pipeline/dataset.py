"""Dataset summary accumulation — regenerates Table 1."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.psl import esld as esld_of
from repro.pipeline.corpus import ParsedTrace


@dataclass
class ServiceDatasetStats:
    """One row of Table 1 (mobile + website merged)."""

    service: str
    fqdns: set[str] = field(default_factory=set)
    eslds: set[str] = field(default_factory=set)
    packets: int = 0
    tcp_flows: int = 0

    @property
    def domain_count(self) -> int:
        return len(self.fqdns)

    @property
    def esld_count(self) -> int:
        return len(self.eslds)


@dataclass
class DatasetSummary:
    """Table 1: per-service rows plus unique totals."""

    per_service: dict[str, ServiceDatasetStats] = field(default_factory=dict)

    def add_trace(self, trace: ParsedTrace) -> None:
        stats = self.per_service.setdefault(
            trace.meta.service, ServiceDatasetStats(service=trace.meta.service)
        )
        hosts = trace.contacted_hosts()
        stats.fqdns.update(hosts)
        stats.eslds.update(filter(None, (esld_of(host) for host in hosts)))
        stats.packets += trace.packet_count
        stats.tcp_flows += trace.flow_count

    def merge(self, other: "DatasetSummary") -> None:
        """Fold another summary (e.g. one shard's slice) into this one."""
        for service, stats in other.per_service.items():
            mine = self.per_service.setdefault(
                service, ServiceDatasetStats(service=service)
            )
            mine.fqdns.update(stats.fqdns)
            mine.eslds.update(stats.eslds)
            mine.packets += stats.packets
            mine.tcp_flows += stats.tcp_flows

    # -- totals (unique across services, as Table 1 footnotes) -----------

    @property
    def total_domains(self) -> int:
        union: set[str] = set()
        for stats in self.per_service.values():
            union.update(stats.fqdns)
        return len(union)

    @property
    def total_eslds(self) -> int:
        union: set[str] = set()
        for stats in self.per_service.values():
            union.update(stats.eslds)
        return len(union)

    @property
    def total_packets(self) -> int:
        return sum(stats.packets for stats in self.per_service.values())

    @property
    def total_tcp_flows(self) -> int:
        return sum(stats.tcp_flows for stats in self.per_service.values())

    def rows(self) -> list[tuple[str, int, int, int, int]]:
        out = []
        for service in sorted(self.per_service):
            stats = self.per_service[service]
            out.append(
                (
                    service,
                    stats.domain_count,
                    stats.esld_count,
                    stats.packets,
                    stats.tcp_flows,
                )
            )
        return out
