"""Artifact replay: audit captured HAR/PCAP corpora from disk.

``generate`` archives each trace unit the way the study archived its
raw data — ``{name}.har`` for web/desktop sessions, ``{name}.pcap`` +
``{name}.keylog`` for mobile — plus a ``manifest.json`` recording the
corpus config and per-trace metadata in generation order.  This module
closes the loop: it scans an artifacts directory, groups the files
into :class:`TraceUnit` records, reconstructs :class:`ParsedTrace`
objects (HAR → requests directly; PCAP + key log → TCP reassembly →
TLS decryption → HTTP parsing, via :mod:`repro.net`), and hands them
to the sharded engine so classify → flow-build → audit → report run
unchanged on replayed input.

Parity guarantee: replaying a ``generate`` output directory yields the
same :class:`repro.pipeline.diffaudit.DiffAuditResult` — byte-identical
JSON export — as a direct in-memory audit of the same config, because
the in-memory path round-trips every trace through exactly the same
serialized forms (HAR JSON, binary PCAP, NSS key-log text) that the
artifacts hold, and the manifest preserves generation order.

Externally captured corpora work too: without a manifest, trace
metadata is derived from ``{service}-{platform}-{kind}-{age}`` file
stems, units are replayed in sorted-stem order, and a missing key log
simply leaves every TLS flow opaque (destination-only accounting).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import mmap
import os
from dataclasses import dataclass
from pathlib import Path

from repro.capture.base import TraceMeta
from repro.fsutil import atomic_write_text
from repro.model import AgeGroup, Platform, TraceKind
from repro.net.har import read_har
from repro.pipeline.corpus import (
    ParsedTrace,
    parsed_trace_from_har,
    parsed_trace_from_mobile,
)
from repro.services.generator import CorpusConfig

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


class ReplayError(ValueError):
    """Raised when an artifacts directory cannot be replayed."""


# ----------------------------------------------------------------------
# Trace units
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceUnit:
    """One replayable trace: identity plus the files that hold it.

    Exactly one of ``har`` / ``pcap`` is set.  ``keylog`` is optional
    alongside ``pcap``; without it every TLS flow stays opaque.
    The unit is picklable, so shard workers load file contents
    themselves instead of shipping parsed traces across processes.
    """

    meta: TraceMeta
    har: Path | None = None
    pcap: Path | None = None
    keylog: Path | None = None

    def __post_init__(self) -> None:
        if (self.har is None) == (self.pcap is None):
            raise ReplayError(
                f"trace {self.meta.name!r} needs exactly one of a .har or a .pcap file"
            )


def load_parsed_trace(unit: TraceUnit) -> ParsedTrace:
    """Read one unit's artifact files back into a :class:`ParsedTrace`.

    Malformed or unreadable artifacts (truncated HAR JSON, bad PCAP
    magic, vanished files — external corpora are the advertised input)
    surface as :class:`ReplayError` naming the file, the exception the
    CLI turns into a clean exit; raw parser tracebacks from inside a
    pool worker would be undebuggable."""
    source = unit.har if unit.har is not None else unit.pcap
    try:
        if unit.har is not None:
            return parsed_trace_from_har(unit.meta, read_har(unit.har))
        keylog_text = (
            unit.keylog.read_text(encoding="utf-8") if unit.keylog is not None else ""
        )
        # The pcap path (not its bytes) goes down to the decoder, which
        # memory-maps it and walks records zero-copy.
        return parsed_trace_from_mobile(unit.meta, unit.pcap, keylog_text)
    except ReplayError:
        raise
    except (ValueError, OSError) as exc:
        # ValueError covers HarError, PcapError and JSONDecodeError.
        raise ReplayError(
            f"cannot replay trace {unit.meta.name!r} from {source}: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------

# Bumped whenever the digest *encoding* changes (not when results
# change — that is the store's result schema, see
# repro.datatypes.store.UNIT_RESULT_SCHEMA).
UNIT_DIGEST_VERSION = 1

_DIGEST_CHUNK = 1 << 20

# Fixed role order for digesting a unit's member files.  The digest
# must never depend on how the corpus was enumerated, only on what
# the unit *is*.
_DIGEST_ROLES = ("har", "pcap", "keylog")


def _digest_file(hasher: "hashlib._Hash", path: Path, eager: bool) -> None:
    """Feed one member file's bytes into ``hasher``.

    The default path memory-maps the file (artifacts can be large and
    are already mmapped by the decoder, so pages are likely resident);
    filesystems that refuse to map fall back to chunked reads.  With
    ``eager=True`` the file is read whole instead — both paths hash
    exactly the same byte sequence, which the property tests pin.
    """
    with open(path, "rb") as handle:
        if eager:
            hasher.update(handle.read())
            return
        size = os.fstat(handle.fileno()).st_size
        if size == 0:
            return
        try:
            view = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            while chunk := handle.read(_DIGEST_CHUNK):
                hasher.update(chunk)
            return
        with view:
            hasher.update(view)


def unit_digest(unit: TraceUnit, *, eager: bool = False) -> str:
    """The content address of one trace unit (SHA-256 hex digest).

    Hashes the unit's identity (every :class:`TraceMeta` field) and
    the raw bytes of each member file in fixed role order — har, pcap,
    keylog — with explicit length framing, so the digest is a pure
    function of (metadata, file contents):

    * enumeration order of the corpus never enters it;
    * any single-byte change to any member file changes it;
    * adding or removing a key log changes it (the framing records
      which roles are present and how long each is).

    Unreadable files surface as :class:`ReplayError`, the same
    contract as :func:`load_parsed_trace`.
    """
    meta = unit.meta
    hasher = hashlib.sha256()
    hasher.update(
        (
            f"repro-unit/{UNIT_DIGEST_VERSION}\n"
            f"{meta.service}\n{meta.platform.value}\n{meta.kind.value}\n"
            f"{meta.age.value if meta.age else 'none'}\n"
        ).encode("utf-8")
    )
    try:
        for role in _DIGEST_ROLES:
            path: Path | None = getattr(unit, role)
            if path is None:
                hasher.update(f"{role}:absent\n".encode("utf-8"))
                continue
            hasher.update(f"{role}:{path.stat().st_size}\n".encode("utf-8"))
            _digest_file(hasher, path, eager)
    except OSError as exc:
        raise ReplayError(
            f"cannot digest trace {meta.name!r}: {exc}"
        ) from exc
    return hasher.hexdigest()


def unit_digest_or_placeholder(unit: TraceUnit) -> str:
    """A unit's content digest, or ``"unavailable"``.

    Error paths want the digest for the record (degraded-unit entries,
    strict failure messages) but must never let digesting a *broken*
    unit — vanished file, permission error — mask the original
    failure."""
    try:
        return unit_digest(unit)
    except ReplayError:
        return "unavailable"


def strict_unit_error(unit: TraceUnit, exc: Exception) -> ReplayError:
    """Fail-fast decode error, enriched for the operator.

    A corrupt artifact used to exit 2 with only the parser's complaint;
    recovering meant bisecting the corpus by hand.  The strict-mode
    error always names the offending unit, its artifact path and its
    content digest, and points at ``--keep-going`` as the quarantine
    alternative."""
    source = unit.har if unit.har is not None else unit.pcap
    return ReplayError(
        f"{exc} [unit {unit.meta.name!r}, artifact {source}, "
        f"digest {unit_digest_or_placeholder(unit)}; "
        "use --keep-going to quarantine this unit and continue]"
    )


def meta_from_name(name: str) -> TraceMeta:
    """Parse ``{service}-{platform}-{kind}-{age}`` artifact stems.

    The fallback for corpora without a manifest.  The service part may
    itself contain hyphens, so the three trailing tokens are consumed
    from the right.
    """
    parts = name.split("-")
    if len(parts) < 4:
        raise ReplayError(
            f"cannot derive trace metadata from {name!r}: expected "
            "{service}-{platform}-{kind}-{age} (write a manifest.json instead)"
        )
    age_token, kind_token, platform_token = parts[-1], parts[-2], parts[-3]
    service = "-".join(parts[:-3])
    try:
        platform = Platform(platform_token)
        kind = TraceKind(kind_token)
        age = None if age_token == "none" else AgeGroup(age_token)
    except ValueError as exc:
        raise ReplayError(f"cannot derive trace metadata from {name!r}: {exc}") from exc
    return TraceMeta(service=service, platform=platform, kind=kind, age=age)


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------


def trace_record(meta: TraceMeta) -> dict:
    """The manifest entry for one generated trace."""
    return {
        "name": meta.name,
        "service": meta.service,
        "platform": meta.platform.value,
        "kind": meta.kind.value,
        "age": meta.age.value if meta.age else None,
    }


def _meta_from_record(record: dict) -> TraceMeta:
    try:
        return TraceMeta(
            service=record["service"],
            platform=Platform(record["platform"]),
            kind=TraceKind(record["kind"]),
            age=AgeGroup(record["age"]) if record.get("age") else None,
        )
    except (KeyError, ValueError) as exc:
        raise ReplayError(f"malformed manifest trace record {record!r}: {exc}") from exc


def write_manifest(
    directory: str | Path, config: CorpusConfig, records: list[dict]
) -> Path:
    """Write ``manifest.json`` next to the artifacts it describes.

    The services list is derived from the trace records themselves
    (first-appearance order), so a manifest merged across incremental
    ``generate`` runs stays truthful about what is on disk.
    """
    directory = Path(directory)
    services = list(dict.fromkeys(record["service"] for record in records))
    config_block = {
        "seed": config.seed,
        "scale": config.scale,
        "profile": config.profile,
        "services": services,
    }
    if config.impair is not None:
        # Recorded only when set, so clean corpora keep their manifest
        # bytes — an impaired corpus must say so or replay would
        # silently mislabel it as clean traffic.
        config_block["impair"] = config.impair
    document = {
        "version": MANIFEST_VERSION,
        "config": config_block,
        "traces": records,
    }
    path = directory / MANIFEST_NAME
    # Atomic: an interrupted generate must leave the previous manifest
    # intact, not a torn JSON file that poisons every later replay.
    atomic_write_text(path, json.dumps(document, indent=1))
    return path


def merge_manifest_traces(
    existing: dict, config: CorpusConfig, records: list[dict]
) -> list[dict]:
    """Fold a new ``generate`` run's records into an existing manifest.

    Incremental generation (``generate --services youtube --output D``
    then ``--services tiktok --output D``) must not silently drop the
    first run's traces from manifest-driven replay.  Regenerated
    services replace their old records; other services are kept.  The
    corpus knobs must match — mixing seeds, scales or profiles in one
    directory would produce a corpus no single config describes.
    """
    old_config = existing.get("config", {})
    for field_name in ("seed", "scale", "profile"):
        new_value = getattr(config, field_name)
        if field_name in old_config and old_config[field_name] != new_value:
            raise ReplayError(
                f"cannot extend this artifacts directory: its manifest records "
                f"{field_name}={old_config[field_name]!r} but this run uses "
                f"{new_value!r}; use a fresh --output directory"
            )
    # ``impair`` is absent from clean manifests, so compare through the
    # None default — mixing impaired and clean captures in one corpus
    # directory would be a corpus no single config describes.
    if old_config.get("impair") != config.impair:
        raise ReplayError(
            f"cannot extend this artifacts directory: its manifest records "
            f"impair={old_config.get('impair')!r} but this run uses "
            f"{config.impair!r}; use a fresh --output directory"
        )
    regenerated = {record["service"] for record in records}
    kept = [
        record
        for record in existing.get("traces", [])
        if record.get("service") not in regenerated
    ]
    return kept + records


def read_manifest(directory: str | Path) -> dict | None:
    """Load ``manifest.json`` if present; None for manifest-less corpora."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReplayError(f"unreadable {path}: {exc}") from exc
    if not isinstance(document, dict) or "traces" not in document:
        raise ReplayError(f"{path} is not a replay manifest (no 'traces' key)")
    version = document.get("version")
    if version != MANIFEST_VERSION:
        raise ReplayError(
            f"unsupported manifest version {version!r} in {path} "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    return document


# ----------------------------------------------------------------------
# Corpus scanning
# ----------------------------------------------------------------------


@dataclass
class ReplayCorpus:
    """An artifacts directory resolved into ordered trace units."""

    directory: Path
    units: list[TraceUnit]
    manifest: dict | None = None

    @classmethod
    def scan(cls, directory: str | Path) -> "ReplayCorpus":
        """Group a directory's artifact files into trace units.

        With a manifest, units follow its (generation) order — the
        order the parity guarantee relies on.  Without one, units are
        built from ``*.har`` / ``*.pcap`` files in sorted-stem order
        with metadata parsed from the stems.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise ReplayError(f"artifacts directory {directory} does not exist")
        manifest = read_manifest(directory)
        if manifest is not None:
            units = [
                cls._unit_for(directory, _meta_from_record(record))
                for record in manifest["traces"]
            ]
        else:
            # A set, not a list: a stem present as both .har and .pcap
            # must yield one unit (har preferred, below), not two.
            stems = sorted(
                {
                    path.stem
                    for path in directory.iterdir()
                    if path.suffix in (".har", ".pcap")
                }
            )
            if not stems:
                raise ReplayError(f"no .har or .pcap artifacts found in {directory}")
            units = [
                cls._unit_for(directory, meta_from_name(stem)) for stem in stems
            ]
        return cls(directory=directory, units=units, manifest=manifest)

    @staticmethod
    def _unit_for(directory: Path, meta: TraceMeta) -> TraceUnit:
        har = directory / f"{meta.name}.har"
        pcap = directory / f"{meta.name}.pcap"
        keylog = directory / f"{meta.name}.keylog"
        if har.exists():
            return TraceUnit(meta=meta, har=har)
        if pcap.exists():
            return TraceUnit(
                meta=meta, pcap=pcap, keylog=keylog if keylog.exists() else None
            )
        raise ReplayError(
            f"trace {meta.name!r} has neither {har.name} nor {pcap.name}"
        )

    def services(self) -> list[str]:
        """Distinct services in first-appearance (generation) order."""
        seen: dict[str, None] = {}
        for unit in self.units:
            seen.setdefault(unit.meta.service, None)
        return list(seen)

    def units_for(self, service: str) -> list[TraceUnit]:
        """One service's trace units, preserving corpus order."""
        return [unit for unit in self.units if unit.meta.service == service]

    def provenance(self) -> "ReplayProvenance":
        return ReplayProvenance(
            directory=str(self.directory),
            manifest=self.manifest is not None,
            traces=len(self.units),
            har_traces=sum(1 for unit in self.units if unit.har is not None),
            pcap_traces=sum(1 for unit in self.units if unit.pcap is not None),
            services=tuple(self.services()),
        )


@dataclass(frozen=True)
class ReplayProvenance:
    """Where a replayed result's input came from (JSON-export payload)."""

    directory: str
    manifest: bool
    traces: int
    har_traces: int
    pcap_traces: int
    services: tuple[str, ...]

    def to_json_dict(self) -> dict:
        return {
            "source": "artifacts",
            "directory": self.directory,
            "manifest": self.manifest,
            "traces": self.traces,
            "har_traces": self.har_traces,
            "pcap_traces": self.pcap_traces,
            "services": list(self.services),
        }


def replay_config(
    corpus: ReplayCorpus,
    *,
    seed: int | None = None,
    scale: float | None = None,
    profile: str | None = None,
    impair: str | None = None,
    services: tuple[str, ...] | None = None,
    fallback: CorpusConfig | None = None,
) -> CorpusConfig:
    """The effective config for auditing a replayed corpus.

    ``None`` means *unspecified*: the manifest supplies the value
    (replay never regenerates traffic, so seed/scale/profile only
    describe the corpus and the manifest is authoritative for them),
    then ``fallback`` — e.g. the CLI's defaults.  Explicit values
    always win, even when they happen to equal a default.  Without a
    manifest, unspecified services come from the scanned artifacts.
    """
    fallback = fallback if fallback is not None else CorpusConfig()
    manifest_config = (corpus.manifest or {}).get("config", {})

    def pick(field: str, explicit):
        if explicit is not None:
            return explicit
        if field in manifest_config:
            return manifest_config[field]
        return getattr(fallback, field)

    if services is None:
        recorded = manifest_config.get("services")
        services = tuple(recorded) if recorded else tuple(corpus.services())
    try:
        return dataclasses.replace(
            fallback,
            seed=pick("seed", seed),
            scale=pick("scale", scale),
            profile=pick("profile", profile),
            impair=pick("impair", impair),
            services=tuple(services),
        )
    except (TypeError, ValueError) as exc:
        # Manifests are hand-writable; a bad value (e.g. an unknown
        # profile) must surface as a replay error, not a traceback.
        raise ReplayError(
            f"invalid corpus config in {corpus.directory / MANIFEST_NAME}: {exc}"
        ) from exc
