"""Lightweight stage profiling for the audit hot path.

The optimization work on the audit pipeline is measured, not guessed:
every shard attributes its wall time to named stages (generate/decode,
extraction, classification, store round-trips, flow building,
labeling), the engine adds its own orchestration stages (shard setup,
execution, result unpacking, merge), and the result is one JSON
document with a stable schema that ``repro bench`` records next to
every ``BENCH_<n>.json`` entry and ``repro audit --profile-out FILE``
writes on demand.

Timing uses :func:`time.perf_counter` around stage boundaries — a few
calls per trace, well under the cost of the stages themselves — so the
profile can stay on permanently instead of being a special mode that
measures an execution path nobody runs.

Since the telemetry subsystem landed (:mod:`repro.obs`), the timer is
a *view over spans*: every ``timer.stage("…")`` is a
:meth:`repro.obs.trace.SpanRecorder.span`, so stage wall time also
feeds the ``repro_spans_total`` / ``repro_span_seconds_total`` metrics
and profile documents are one projection of the same span stream.
"""

from __future__ import annotations

import json
from contextlib import AbstractContextManager
from pathlib import Path
from typing import Mapping

from repro.fsutil import atomic_write_text
from repro.obs.trace import SpanRecorder

PROFILE_VERSION = 1

# Engine-level keys every profile's ``engine`` section carries.
ENGINE_PROFILE_FIELDS = (
    "executor",
    "jobs",
    "tasks",
    "shard_setup_s",
    "execute_s",
    "unpack_s",
    "merge_s",
    "task_bytes",
    "result_bytes",
    "stages",
)

# Shard stage names (the ``stages`` table).  A profile only contains
# the stages that ran — a generated corpus has no ``decode`` time, a
# run without --cache-dir has no store round-trips, and only an
# incremental replay (--from-artifacts with --cache-dir) spends time
# in ``digest`` (content-addressing trace units; its unit-result
# store round-trips fold into ``store_get``/``store_put``).
SHARD_STAGES = (
    "setup",
    "generate",
    "decode",
    "digest",
    "dataset",
    "extract",
    "classify",
    "store_get",
    "store_put",
    "flow_build",
    "label",
)


class StageTimer:
    """Accumulates wall time per named stage — a view over spans.

    The historical profiling surface (``stage``/``add``/``merge``/
    ``get``/``as_dict``/``times``) is unchanged; the implementation
    delegates to a :class:`repro.obs.trace.SpanRecorder`, so every
    timed stage is also a span and lands in the metrics registry.
    Pass a recorder with ``retain_events=True`` to additionally keep
    the per-span event stream for a ``--spans-out`` sidecar.
    """

    def __init__(self, recorder: SpanRecorder | None = None) -> None:
        self.recorder = SpanRecorder() if recorder is None else recorder

    @property
    def times(self) -> dict[str, float]:
        """The live name → accumulated-seconds table."""
        return self.recorder.totals

    def stage(self, name: str) -> "AbstractContextManager[None]":
        return self.recorder.span(name)

    def add(self, name: str, seconds: float) -> None:
        self.recorder.record(name, seconds)

    def merge(self, other: Mapping[str, float]) -> None:
        """Fold another timer's (or shard's) stage table into this one."""
        self.recorder.merge(other)

    def get(self, name: str) -> float:
        return self.recorder.get(name)

    def as_dict(self) -> dict[str, float]:
        """Stage table, rounded and sorted for stable JSON output."""
        return self.recorder.as_dict()


def profile_document(
    workload: str,
    wall_time_s: float,
    engine: Mapping[str, object],
    downstream_s: float = 0.0,
) -> dict:
    """One schema-versioned profile document.

    ``engine`` is :attr:`repro.pipeline.engine.EngineOutput.profile`;
    ``downstream_s`` is everything after the merge (audit assembly,
    linkability, census).
    """
    return {
        "version": PROFILE_VERSION,
        "workload": workload,
        "wall_time_s": round(wall_time_s, 6),
        "engine": dict(engine),
        "downstream_s": round(downstream_s, 6),
    }


def validate_profile(document: Mapping) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid profile."""
    if not isinstance(document, Mapping):
        raise ValueError("profile document must be a mapping")
    missing = {"version", "workload", "wall_time_s", "engine", "downstream_s"} - set(
        document
    )
    if missing:
        raise ValueError(f"profile document missing fields: {sorted(missing)}")
    if document["version"] != PROFILE_VERSION:
        raise ValueError(
            f"unsupported profile version {document['version']!r} "
            f"(expected {PROFILE_VERSION})"
        )
    engine = document["engine"]
    if not isinstance(engine, Mapping):
        raise ValueError("profile 'engine' section must be a mapping")
    missing = set(ENGINE_PROFILE_FIELDS) - set(engine)
    if missing:
        raise ValueError(f"profile engine section missing fields: {sorted(missing)}")
    stages = engine["stages"]
    if not isinstance(stages, Mapping):
        raise ValueError("profile 'engine.stages' must be a mapping")
    unknown = set(stages) - set(SHARD_STAGES)
    if unknown:
        raise ValueError(f"profile has unknown stages: {sorted(unknown)}")
    for key in ("wall_time_s", "downstream_s"):
        if not isinstance(document[key], (int, float)):
            raise ValueError(f"profile {key!r} must be a number")
    for name, seconds in stages.items():
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ValueError(f"profile stage {name!r} must be a non-negative number")


def write_profile(path: Path | str, document: Mapping) -> Path:
    """Validate and write one profile document as JSON."""
    validate_profile(document)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
