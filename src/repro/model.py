"""Shared vocabulary types used across the DiffAudit pipeline.

These enums mirror the paper's experimental dimensions:

* :class:`AgeGroup` — the COPPA/CCPA age brackets (§2.1);
* :class:`TraceKind` — account creation / logged-in / logged-out
  collection modes (§3.1);
* :class:`TraceColumn` — the four columns of Table 4 (the age-specific
  columns merge account-creation and logged-in traces; logged-out has
  no age);
* :class:`Platform` — website, mobile app, desktop app (§3.1.1–3.1.3);
* :class:`FlowCell` — collect (1st party) vs share (3rd party), ATS or
  not — the four destination classes of Table 4;
* :class:`Presence` — on which platforms a data flow was observed
  (the •/web/mobile/— symbols of Table 4).
"""

from __future__ import annotations

import enum


class AgeGroup(str, enum.Enum):
    """COPPA/CCPA age brackets."""

    CHILD = "child"  # younger than 13 (COPPA)
    ADOLESCENT = "adolescent"  # 13-15 (CCPA opt-in band)
    ADULT = "adult"  # 16 and older

    @property
    def protected(self) -> bool:
        """True for the under-16 groups with opt-in requirements."""
        return self is not AgeGroup.ADULT


class TraceKind(str, enum.Enum):
    """How a trace was collected (paper §3.1)."""

    ACCOUNT_CREATION = "account_creation"
    LOGGED_IN = "logged_in"
    LOGGED_OUT = "logged_out"

    @property
    def consented(self) -> bool:
        """Consent/age are only known once an account exists."""
        return self is not TraceKind.LOGGED_OUT


class TraceColumn(str, enum.Enum):
    """The four audit columns of Table 4."""

    CHILD = "child"
    ADOLESCENT = "adolescent"
    ADULT = "adult"
    LOGGED_OUT = "logged_out"

    @classmethod
    def for_trace(cls, kind: TraceKind, age: AgeGroup | None) -> "TraceColumn":
        """Map a collected trace to its audit column."""
        if kind is TraceKind.LOGGED_OUT:
            return cls.LOGGED_OUT
        if age is None:
            raise ValueError("age-specific trace requires an age group")
        return cls(age.value)

    @property
    def age_group(self) -> AgeGroup | None:
        if self is TraceColumn.LOGGED_OUT:
            return None
        return AgeGroup(self.value)


class Platform(str, enum.Enum):
    WEB = "web"
    MOBILE = "mobile"
    DESKTOP = "desktop"


class FlowCell(str, enum.Enum):
    """Destination class of a data flow (Table 4 column groups)."""

    COLLECT_1ST = "collect_1st"
    COLLECT_1ST_ATS = "collect_1st_ats"
    SHARE_3RD = "share_3rd"
    SHARE_3RD_ATS = "share_3rd_ats"

    @property
    def is_share(self) -> bool:
        return self in (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS)

    @property
    def is_ats(self) -> bool:
        return self in (FlowCell.COLLECT_1ST_ATS, FlowCell.SHARE_3RD_ATS)


class Presence(str, enum.Enum):
    """Platform presence of a flow — Table 4's cell symbols."""

    BOTH = "both"  # •
    WEB_ONLY = "web"  # mouse-pointer symbol
    MOBILE_ONLY = "mobile"  # mobile symbol
    NONE = "none"  # —

    def on(self, platform: Platform) -> bool:
        """Should/was this flow (be) observed on ``platform``?

        Desktop traces behave like the website for Table 4 purposes —
        the paper captures them with Proxyman into HAR and merges them
        with web.
        """
        if self is Presence.NONE:
            return False
        if self is Presence.BOTH:
            return True
        if self is Presence.WEB_ONLY:
            return platform in (Platform.WEB, Platform.DESKTOP)
        return platform is Platform.MOBILE

    @classmethod
    def from_platforms(cls, web: bool, mobile: bool) -> "Presence":
        if web and mobile:
            return cls.BOTH
        if web:
            return cls.WEB_ONLY
        if mobile:
            return cls.MOBILE_ONLY
        return cls.NONE


AGE_COLUMNS: tuple[TraceColumn, ...] = (
    TraceColumn.CHILD,
    TraceColumn.ADOLESCENT,
    TraceColumn.ADULT,
)

ALL_COLUMNS: tuple[TraceColumn, ...] = AGE_COLUMNS + (TraceColumn.LOGGED_OUT,)
