"""Minimal, strict URL parsing tailored to traffic auditing.

The pipeline only ever needs scheme, host (FQDN), port, path, and the
query string split into key-value pairs; fragments and userinfo are
parsed but ignored downstream.  We implement this ourselves rather than
using :mod:`urllib.parse` wrappers so that query-key extraction
(percent-decoding, repeated keys, bare flags) matches what the data
type extractor expects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_SCHEME_RE = re.compile(r"^([a-zA-Z][a-zA-Z0-9+.-]*):")
_DEFAULT_PORTS = {"http": 80, "https": 443, "ws": 80, "wss": 443}


class UrlError(ValueError):
    """Raised for URLs the auditing pipeline cannot interpret."""


def _percent_decode(text: str) -> str:
    """Decode %XX escapes as UTF-8 byte sequences (and '+' as space)."""
    if "%" not in text and "+" not in text:
        return text  # nothing encoded — the overwhelmingly common case
    out = bytearray()
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "%":
            hex_part = text[i + 1 : i + 3]
            if len(hex_part) == 2 and all(
                c in "0123456789abcdefABCDEF" for c in hex_part
            ):
                out.append(int(hex_part, 16))
                i += 3
                continue
        if ch == "+":
            out.append(0x20)
            i += 1
            continue
        out.extend(ch.encode("utf-8"))
        i += 1
    return out.decode("utf-8", errors="replace")


_UNRESERVED = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)


def percent_encode(text: str, safe: str = "") -> str:
    """Percent-encode a query component (RFC 3986 unreserved kept)."""
    unreserved = _UNRESERVED if not safe else _UNRESERVED.union(safe)
    # Most generated values are entirely unreserved; one set-driven
    # scan avoids building the output character by character.
    if all(ch in unreserved for ch in text):
        return text
    out: list[str] = []
    for ch in text:
        if ch in unreserved:
            out.append(ch)
        else:
            out.extend(f"%{byte:02X}" for byte in ch.encode("utf-8"))
    return "".join(out)


def parse_query(query: str) -> list[tuple[str, str]]:
    """Split a query string into decoded (key, value) pairs.

    Bare flags (``?debug``) become ``("debug", "")``.  Repeated keys are
    preserved in order — the extractor counts each occurrence once per
    key name.
    """
    pairs: list[tuple[str, str]] = []
    if not query:
        return pairs
    for piece in query.split("&"):
        if not piece:
            continue
        key, sep, value = piece.partition("=")
        pairs.append((_percent_decode(key), _percent_decode(value) if sep else ""))
    return pairs


def encode_query(pairs: list[tuple[str, str]]) -> str:
    """Inverse of :func:`parse_query`."""
    return "&".join(
        f"{percent_encode(key)}={percent_encode(value)}" if value else percent_encode(key)
        for key, value in pairs
    )


@dataclass(frozen=True)
class Url:
    """A parsed URL.  ``host`` is always lowercase."""

    scheme: str
    host: str
    port: int
    path: str = "/"
    query: str = ""
    fragment: str = ""

    @property
    def fqdn(self) -> str:
        """The fully qualified domain name used for destination analysis."""
        return self.host

    @property
    def origin(self) -> str:
        default = _DEFAULT_PORTS.get(self.scheme)
        if default == self.port:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    def query_pairs(self) -> list[tuple[str, str]]:
        return parse_query(self.query)

    def __str__(self) -> str:
        url = self.origin + self.path
        if self.query:
            url += "?" + self.query
        if self.fragment:
            url += "#" + self.fragment
        return url


def parse_url(raw: str) -> Url:
    """Parse an absolute http(s)/ws(s) URL.

    Raises :class:`UrlError` on relative URLs, unsupported schemes, or
    empty hosts — the auditing pipeline treats those as trace corruption
    rather than silently skipping them.
    """
    match = _SCHEME_RE.match(raw)
    if not match:
        raise UrlError(f"URL missing scheme: {raw!r}")
    scheme = match.group(1).lower()
    if scheme not in _DEFAULT_PORTS:
        raise UrlError(f"unsupported scheme {scheme!r} in {raw!r}")
    rest = raw[match.end() :]
    if not rest.startswith("//"):
        raise UrlError(f"URL missing authority: {raw!r}")
    rest = rest[2:]

    fragment = ""
    if "#" in rest:
        rest, fragment = rest.split("#", 1)
    query = ""
    if "?" in rest:
        rest, query = rest.split("?", 1)
    if "/" in rest:
        authority, path = rest.split("/", 1)
        path = "/" + path
    else:
        authority, path = rest, "/"
    if "@" in authority:  # strip userinfo
        authority = authority.rsplit("@", 1)[1]

    host = authority
    port = _DEFAULT_PORTS[scheme]
    if authority.startswith("["):  # IPv6 literal
        closing = authority.find("]")
        if closing == -1:
            raise UrlError(f"unterminated IPv6 literal in {raw!r}")
        host = authority[1:closing]
        port_part = authority[closing + 1 :]
        if port_part.startswith(":"):
            port = int(port_part[1:])
    elif ":" in authority:
        host, port_text = authority.rsplit(":", 1)
        if not port_text.isdigit():
            raise UrlError(f"invalid port in {raw!r}")
        port = int(port_text)
    if not host:
        raise UrlError(f"empty host in {raw!r}")
    if not 0 < port < 65536:
        raise UrlError(f"port out of range in {raw!r}")
    return Url(
        scheme=scheme,
        host=host.lower().rstrip("."),
        port=port,
        path=path,
        query=query,
        fragment=fragment,
    )


_IPV4_RE = re.compile(r"^\d{1,3}(\.\d{1,3}){3}$")


def is_ip_literal(host: str) -> bool:
    """True for IPv4 dotted quads and IPv6 literals (no eSLD exists)."""
    if _IPV4_RE.match(host):
        return all(0 <= int(part) <= 255 for part in host.split("."))
    return ":" in host
