"""TLS record framing, NSS key-log files, and keylog-based decryption.

The paper decrypts mobile traffic by installing PCAPdroid's certificate,
saving a TLS key log, and embedding the keys into the PCAP with
``editcap`` before Wireshark decryption (§3.1.1, §3.2).  We reproduce
the *workflow* faithfully with a simulated cipher:

* application data is wrapped in TLS 1.3-shaped records
  (``type=23, version=0x0303, length``);
* each session has a 32-byte ``CLIENT_TRAFFIC_SECRET`` recorded in NSS
  key-log format (the exact format PCAPdroid emits);
* the record payload is encrypted with a keystream derived from the
  secret (SHA-256 counter mode) — cryptographically toy, but decryption
  *requires* the right secret, so the "no keylog ⇒ opaque bytes" code
  path is real, including certificate-pinned sessions whose secrets
  never reach the log (Frida-bypass failures).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from pathlib import Path

from repro.fsutil import atomic_write_text
from repro.obs.metrics import REGISTRY

_RECORDS = REGISTRY.counter("repro_tls_records_total")
_PLAINTEXT_BYTES = REGISTRY.counter("repro_tls_plaintext_bytes_total")

RECORD_TYPE_APPDATA = 23
RECORD_VERSION = 0x0303
MAX_RECORD_LEN = 16384

_RECORD_HEADER = struct.Struct("!BHH")
_U64 = struct.Struct("!Q")
_U16 = struct.Struct("!H")


class TlsError(ValueError):
    """Raised on malformed records or missing key material."""


# Per-record keystream memo.  The derivation is deterministic in
# (secret, client_random), and the audit pipeline derives each record's
# keystream twice in one process — once encrypting at capture time,
# once decrypting the archived artifact — so the second derivation is a
# lookup.  Bounded: cleared wholesale when full (records are
# encrypt-then-decrypted trace by trace, so locality is tight).
_KEYSTREAM_CACHE: dict[tuple[bytes, bytes], bytes] = {}
_KEYSTREAM_CACHE_MAX = 2048


def _keystream(secret: bytes, client_random: bytes, length: int) -> bytes:
    """Deterministic keystream: SHA-256(secret || random || counter).

    Blocks accumulate into one preallocated ``bytearray`` (O(n), no
    per-block length rescans), but the derivation itself is frozen —
    it defines the bytes of every archived capture.
    """
    key = (secret, client_random)
    cached = _KEYSTREAM_CACHE.get(key)
    if cached is not None and len(cached) >= length:
        return cached[:length]
    out = bytearray(cached if cached is not None else b"")
    base = hashlib.sha256(secret + client_random)
    counter = len(out) // 32
    while len(out) < length:
        # digest(prefix || counter) via one cloned running hash: the
        # shared 64-byte prefix is compressed once per call, not once
        # per 32-byte block.
        block = base.copy()
        block.update(_U64.pack(counter))
        out += block.digest()
        counter += 1
    if len(_KEYSTREAM_CACHE) >= _KEYSTREAM_CACHE_MAX:
        _KEYSTREAM_CACHE.clear()
    full = bytes(out)
    _KEYSTREAM_CACHE[key] = full
    return full[:length]


def _xor(data, keystream: bytes) -> bytes:
    """XOR two equal-length byte strings via one big-int operation.

    ~100x faster than a per-byte Python loop and accepts any
    bytes-like ``data`` (the decode path hands in memoryviews).
    """
    length = len(data)
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
    ).to_bytes(length, "big")


@dataclass(frozen=True)
class TlsSession:
    """Key material for one TLS connection."""

    client_random: bytes  # 32 bytes, identifies the session in the keylog
    secret: bytes  # 32 bytes traffic secret

    def __post_init__(self) -> None:
        if len(self.client_random) != 32 or len(self.secret) != 32:
            raise TlsError("client_random and secret must be 32 bytes")

    @classmethod
    def derive(cls, seed: bytes) -> "TlsSession":
        """Deterministically derive a session from generator state."""
        client_random = hashlib.sha256(b"client-random|" + seed).digest()
        secret = hashlib.sha256(b"traffic-secret|" + seed).digest()
        return cls(client_random=client_random, secret=secret)


def encrypt_stream(plaintext: bytes, session: TlsSession) -> bytes:
    """Wrap plaintext into encrypted TLS application-data records."""
    out = bytearray()
    offset = 0
    for start in range(0, len(plaintext), MAX_RECORD_LEN):
        chunk = plaintext[start : start + MAX_RECORD_LEN]
        keystream = _keystream(
            session.secret, session.client_random + _U64.pack(offset), len(chunk)
        )
        ciphertext = _xor(chunk, keystream)
        out += _RECORD_HEADER.pack(RECORD_TYPE_APPDATA, RECORD_VERSION, len(ciphertext))
        out += ciphertext
        offset += 1
    return bytes(out)


def iter_records(stream):
    """Yield (record_type, body) for each TLS record in a byte stream.

    Accepts any bytes-like object; with a ``memoryview`` input, each
    ``body`` is a zero-copy view into it.
    """
    position = 0
    end = len(stream)
    while position < end:
        if position + 5 > end:
            raise TlsError("truncated TLS record header")
        record_type, version, length = _RECORD_HEADER.unpack(
            stream[position : position + 5]
        )
        if version != RECORD_VERSION:
            raise TlsError(f"unexpected TLS version 0x{version:04x}")
        if position + 5 + length > end:
            raise TlsError("truncated TLS record body")
        yield record_type, stream[position + 5 : position + 5 + length]
        position += 5 + length


def scan_records(stream) -> tuple[list[tuple[int, "bytes | memoryview"]], int]:
    """Complete TLS records at the head of ``stream``, plus bytes consumed.

    The incremental-feed sibling of :func:`iter_records`: instead of
    raising on a truncated trailing record, it stops cleanly before it
    and reports how far it got, so a streaming caller can drop the
    consumed prefix and retry once more bytes arrive.  A malformed
    record header (wrong version) still raises :class:`TlsError` — that
    is corruption, not an incomplete feed.
    """
    records: list[tuple[int, "bytes | memoryview"]] = []
    position = 0
    end = len(stream)
    while position + 5 <= end:
        record_type, version, length = _RECORD_HEADER.unpack(
            stream[position : position + 5]
        )
        if version != RECORD_VERSION:
            raise TlsError(f"unexpected TLS version 0x{version:04x}")
        if position + 5 + length > end:
            break  # partial trailing record — wait for more bytes
        records.append((record_type, stream[position + 5 : position + 5 + length]))
        position += 5 + length
    return records, position


def decrypt_record(body, session: TlsSession, offset: int) -> bytes:
    """Decrypt one application-data record at its stream ``offset``.

    ``offset`` is the record's index among *all* records of the flow
    (the counter :func:`decrypt_stream` derives from ``enumerate``), so
    incremental per-record decryption reproduces the batch keystream
    exactly.
    """
    keystream = _keystream(
        session.secret, session.client_random + _U64.pack(offset), len(body)
    )
    _RECORDS.inc()
    _PLAINTEXT_BYTES.inc(len(body))
    return _xor(body, keystream)


def decrypt_stream(stream, session: TlsSession) -> bytes:
    """Recover plaintext from records given the session's secret.

    Plaintext accumulates into one ``bytearray`` — O(n) in the stream
    length, however many records it framed.
    """
    out = bytearray()
    for offset, (record_type, body) in enumerate(iter_records(stream)):
        if record_type != RECORD_TYPE_APPDATA:
            continue
        out += decrypt_record(body, session, offset)
    return bytes(out)


def looks_like_tls(stream) -> bool:
    """Cheap sniff used by the post-processor to route flows.

    Matches either a pseudo-ClientHello (``16 03`` handshake magic) or
    a bare application-data record stream.
    """
    if len(stream) >= 2 and bytes(stream[:2]) == b"\x16\x03":
        return True
    return (
        len(stream) >= 5
        and stream[0] == RECORD_TYPE_APPDATA
        and _U16.unpack(stream[1:3])[0] == RECORD_VERSION
    )


_KEYLOG_LABEL = "CLIENT_TRAFFIC_SECRET_0"


@dataclass
class KeyLog:
    """An NSS key-log file: ``LABEL <client_random_hex> <secret_hex>``."""

    secrets: dict[bytes, bytes] = field(default_factory=dict)  # random -> secret

    def record(self, session: TlsSession) -> None:
        self.secrets[session.client_random] = session.secret

    def lookup(self, client_random: bytes) -> TlsSession | None:
        secret = self.secrets.get(client_random)
        if secret is None:
            return None
        return TlsSession(client_random=client_random, secret=secret)

    def to_text(self) -> str:
        return "".join(
            f"{_KEYLOG_LABEL} {random.hex()} {secret.hex()}\n"
            for random, secret in self.secrets.items()
        )

    @classmethod
    def from_text(cls, text: str) -> "KeyLog":
        log = cls()
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise TlsError(f"bad keylog line {line_number}: {line!r}")
            label, random_hex, secret_hex = parts
            if label != _KEYLOG_LABEL:
                continue  # other labels (handshake secrets) are ignored
            log.secrets[bytes.fromhex(random_hex)] = bytes.fromhex(secret_hex)
        return log

    def write(self, path: str | Path) -> None:
        atomic_write_text(Path(path), self.to_text(), encoding="ascii")

    @classmethod
    def read(cls, path: str | Path) -> "KeyLog":
        return cls.from_text(Path(path).read_text(encoding="ascii"))


@dataclass(frozen=True)
class ClientHello:
    """The pseudo-ClientHello prefixed to every encrypted flow.

    Carries exactly what a passive observer of real TLS sees in the
    clear: the client random (for keylog lookup) and the SNI hostname
    (so destinations of *undecryptable* flows are still attributable —
    the paper includes encrypted traffic in its domain counts, §3.1.1).
    """

    client_random: bytes
    sni: str


def wrap_with_hello(stream: bytes, session: TlsSession, sni: str) -> bytes:
    """Prefix the pseudo-ClientHello (magic + random + SNI)."""
    sni_bytes = sni.encode("idna") if sni else b""
    if len(sni_bytes) > 0xFFFF:
        raise TlsError("SNI too long")
    return (
        b"\x16\x03"
        + session.client_random
        + _U16.pack(len(sni_bytes))
        + sni_bytes
        + stream
    )


def unwrap_hello(stream) -> tuple[ClientHello | None, "bytes | memoryview"]:
    """Split off the pseudo-ClientHello; returns (hello, records).

    Accepts any bytes-like stream; the returned record stream is a
    zero-copy slice of it.
    """
    if len(stream) < 36 or bytes(stream[:2]) != b"\x16\x03":
        return None, stream
    client_random = bytes(stream[2:34])
    (sni_length,) = _U16.unpack(stream[34:36])
    if len(stream) < 36 + sni_length:
        raise TlsError("truncated ClientHello SNI")
    sni = bytes(stream[36 : 36 + sni_length]).decode("idna") if sni_length else ""
    return ClientHello(client_random=client_random, sni=sni), stream[36 + sni_length :]
