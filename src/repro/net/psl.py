"""Public-suffix-list engine — the ``tldextract`` substitute.

The paper extracts the effective second-level domain (eSLD) of every
packet destination with ``tldextract`` (§3.2.3).  We implement the same
semantics over an embedded snapshot of the Mozilla Public Suffix List
covering the suffixes that occur in the simulated domain universe plus
the common multi-label and wildcard rules, so the algorithmic corner
cases (``*.ck``, ``!www.ck``, ``co.uk``) are exercised for real.

Algorithm (publicsuffix.org):

1. Match all rules against the domain; a rule matches when it is a
   suffix of the domain label-wise, with ``*`` matching exactly one
   label.
2. Exception rules (``!``) beat normal rules; otherwise the longest
   rule wins; if nothing matches, the suffix is the last label.
3. The registered domain (eSLD) is the suffix plus one preceding label.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.net.url import is_ip_literal

# Embedded PSL snapshot.  Deliberately small but structurally complete:
# plain TLDs, second-level public suffixes, wildcard and exception rules.
_PSL_SNAPSHOT = """
// ===BEGIN ICANN DOMAINS===
com
net
org
edu
gov
mil
int
io
co
ai
tv
me
ms
fm
gg
ly
gl
to
app
dev
cloud
online
site
store
tech
xyz
info
biz
mobi
name
pro
live
news
games
social
chat
video
music
design
agency
network
systems
digital
media
email
uk
co.uk
org.uk
ac.uk
gov.uk
au
com.au
net.au
org.au
edu.au
jp
co.jp
ne.jp
or.jp
ac.jp
cn
com.cn
net.cn
org.cn
kr
co.kr
br
com.br
net.br
in
co.in
net.in
de
fr
nl
se
no
fi
dk
es
it
pl
ru
com.ru
ca
us
eu
ch
at
be
ie
nz
co.nz
net.nz
sg
com.sg
hk
com.hk
tw
com.tw
mx
com.mx
ar
com.ar
za
co.za
*.ck
!www.ck
*.bd
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
cloudfront.net
amazonaws.com
s3.amazonaws.com
github.io
gitlab.io
netlify.app
vercel.app
herokuapp.com
azurewebsites.net
blogspot.com
firebaseapp.com
web.app
workers.dev
pages.dev
fastly.net
akamaized.net
akamaihd.net
edgekey.net
edgesuite.net
cdn77.org
b-cdn.net
// ===END PRIVATE DOMAINS===
"""


@dataclass(frozen=True)
class ExtractResult:
    """Mirror of ``tldextract.ExtractResult``."""

    subdomain: str
    domain: str
    suffix: str

    @property
    def registered_domain(self) -> str:
        """The eSLD, e.g. ``events.data.microsoft.com`` → ``microsoft.com``."""
        if self.domain and self.suffix:
            return f"{self.domain}.{self.suffix}"
        return ""

    @property
    def fqdn(self) -> str:
        parts = [p for p in (self.subdomain, self.domain, self.suffix) if p]
        return ".".join(parts)


@dataclass(frozen=True)
class _Rule:
    labels: tuple[str, ...]
    exception: bool

    def matches(self, domain_labels: tuple[str, ...]) -> bool:
        if len(domain_labels) < len(self.labels):
            return False
        for rule_label, domain_label in zip(
            reversed(self.labels), reversed(domain_labels)
        ):
            if rule_label != "*" and rule_label != domain_label:
                return False
        return True


class PublicSuffixList:
    """Parsed PSL with :meth:`extract` implementing the PSL algorithm.

    ``include_private`` mirrors ``tldextract``'s default of honouring
    the private-domain section (so ``foo.cloudfront.net`` has eSLD
    ``foo.cloudfront.net``); pass ``False`` for ICANN-only behaviour.
    """

    def __init__(self, text: str = _PSL_SNAPSHOT, include_private: bool = True) -> None:
        self._rules: dict[tuple[str, ...], _Rule] = {}
        section_private = False
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("//"):
                if "BEGIN PRIVATE DOMAINS" in line:
                    section_private = True
                elif "END PRIVATE DOMAINS" in line:
                    section_private = False
                continue
            if section_private and not include_private:
                continue
            exception = line.startswith("!")
            if exception:
                line = line[1:]
            labels = tuple(line.lower().split("."))
            self._rules[labels] = _Rule(labels=labels, exception=exception)
        # A rule can only match a domain whose last label equals the
        # rule's last label (``*`` matches exactly one label, so a
        # trailing ``*`` is the one case that matches any TLD).
        # Bucketing by that label turns suffix_length from a scan of
        # every rule into a lookup of the handful sharing the TLD —
        # eSLD extraction is the audit hot path's single biggest cost.
        by_last: dict[str, list[_Rule]] = {}
        star_last: list[_Rule] = []
        for rule in self._rules.values():
            if rule.labels[-1] == "*":
                star_last.append(rule)
            else:
                by_last.setdefault(rule.labels[-1], []).append(rule)
        self._by_last = {label: tuple(rules) for label, rules in by_last.items()}
        self._star_last = tuple(star_last)

    def __len__(self) -> int:
        return len(self._rules)

    def suffix_length(self, domain_labels: tuple[str, ...]) -> int:
        """Number of labels in the public suffix of ``domain_labels``."""
        candidates = self._by_last.get(domain_labels[-1], ())
        if self._star_last:
            candidates = candidates + self._star_last
        best_exception: _Rule | None = None
        best_normal: _Rule | None = None
        for rule in candidates:
            if not rule.matches(domain_labels):
                continue
            if rule.exception:
                if best_exception is None or len(rule.labels) > len(best_exception.labels):
                    best_exception = rule
            elif best_normal is None or len(rule.labels) > len(best_normal.labels):
                best_normal = rule
        if best_exception is not None:
            # Exception rules mark the *registered* domain; the public
            # suffix is the exception rule minus its leftmost label.
            return len(best_exception.labels) - 1
        if best_normal is not None:
            return len(best_normal.labels)
        return 1  # unlisted TLD: "the prevailing rule is '*'" → 1 label

    def extract(self, host: str) -> ExtractResult:
        """Split a hostname into subdomain / domain / suffix."""
        host = host.lower().rstrip(".")
        if not host or is_ip_literal(host):
            return ExtractResult(subdomain="", domain=host, suffix="")
        labels = tuple(host.split("."))
        if len(labels) == 1:
            return ExtractResult(subdomain="", domain=labels[0], suffix="")
        n_suffix = self.suffix_length(labels)
        if n_suffix >= len(labels):
            # The whole name is a public suffix: no registered domain.
            return ExtractResult(subdomain="", domain="", suffix=host)
        suffix = ".".join(labels[-n_suffix:])
        domain = labels[-n_suffix - 1]
        subdomain = ".".join(labels[: -n_suffix - 1])
        return ExtractResult(subdomain=subdomain, domain=domain, suffix=suffix)


@lru_cache(maxsize=1)
def default_psl() -> PublicSuffixList:
    """The process-wide PSL instance built from the embedded snapshot."""
    return PublicSuffixList()


@lru_cache(maxsize=65536)
def extract(host: str) -> ExtractResult:
    """Module-level convenience mirroring ``tldextract.extract``.

    Memoized: the corpus re-extracts the same few hundred hostnames
    millions of times (every packet destination, every catalog build,
    every dataset roll-up), and extraction is a pure function of the
    host against the fixed embedded snapshot.  The result dataclass is
    frozen, so sharing one instance across callers is safe.
    """
    return default_psl().extract(host)


def esld(host: str) -> str:
    """The registered domain of ``host`` (empty for IPs/public suffixes)."""
    return extract(host).registered_domain
