"""Networking substrate.

Everything the DiffAudit pipeline needs to handle raw traces:

* :mod:`repro.net.url` — URL parsing and FQDN extraction;
* :mod:`repro.net.psl` — public-suffix-list engine (``tldextract``
  substitute) for eSLD extraction;
* :mod:`repro.net.http` — HTTP request/response message model;
* :mod:`repro.net.har` — HAR 1.2 reader/writer (website and desktop
  traces);
* :mod:`repro.net.packet` — Ethernet/IPv4/IPv6/TCP header codecs;
* :mod:`repro.net.tcp` — TCP segmentation and flow reassembly;
* :mod:`repro.net.tls` — TLS record framing, NSS key-log files, and
  keylog-based decryption (``editcap`` substitute);
* :mod:`repro.net.pcap` — binary libpcap reader/writer (mobile traces).
"""

from repro.net.url import Url, parse_url
from repro.net.psl import PublicSuffixList, ExtractResult, default_psl, extract
from repro.net.http import Header, HttpRequest, HttpResponse
from repro.net.har import Har, HarEntry, read_har, write_har

__all__ = [
    "Url",
    "parse_url",
    "PublicSuffixList",
    "ExtractResult",
    "default_psl",
    "extract",
    "Header",
    "HttpRequest",
    "HttpResponse",
    "Har",
    "HarEntry",
    "read_har",
    "write_har",
]
