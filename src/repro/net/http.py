"""HTTP/1.1 message model, serializer, and parser.

Mobile traces carry HTTP requests as bytes inside TCP payloads inside
PCAP files; website traces carry them as HAR entries.  Both converge on
:class:`HttpRequest` / :class:`HttpResponse`, the common currency of
the post-processing pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.url import Url, parse_url
from repro.obs.metrics import REGISTRY

_REQUESTS = REGISTRY.counter("repro_http_requests_total")


class HttpParseError(ValueError):
    """Raised when bytes cannot be parsed as an HTTP/1.1 message."""


@dataclass(frozen=True)
class Header:
    """A single header field; name comparisons are case-insensitive."""

    name: str
    value: str

    def matches(self, name: str) -> bool:
        return self.name.lower() == name.lower()


@dataclass
class HttpRequest:
    """An outgoing HTTP request observed in a trace."""

    method: str
    url: Url
    headers: list[Header] = field(default_factory=list)
    body: bytes = b""
    http_version: str = "HTTP/1.1"
    timestamp: float = 0.0

    def header(self, name: str) -> str | None:
        """First header value with the given name, or None."""
        for header in self.headers:
            if header.matches(name):
                return header.value
        return None

    def cookies(self) -> list[tuple[str, str]]:
        """Parsed ``Cookie`` header pairs (empty list when absent)."""
        raw = self.header("Cookie")
        if not raw:
            return []
        pairs: list[tuple[str, str]] = []
        for piece in raw.split(";"):
            piece = piece.strip()
            if not piece:
                continue
            name, _, value = piece.partition("=")
            pairs.append((name.strip(), value.strip()))
        return pairs

    @property
    def content_type(self) -> str:
        value = self.header("Content-Type") or ""
        return value.split(";")[0].strip().lower()

    def to_bytes(self) -> bytes:
        """Serialize as an HTTP/1.1 on-the-wire request."""
        target = self.url.path + (f"?{self.url.query}" if self.url.query else "")
        lines = [f"{self.method} {target} {self.http_version}"]
        names = {header.name.lower() for header in self.headers}
        if "host" not in names:
            lines.append(f"Host: {self.url.host}")
        for header in self.headers:
            lines.append(f"{header.name}: {header.value}")
        if self.body and "content-length" not in names:
            lines.append(f"Content-Length: {len(self.body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body

    @classmethod
    def from_bytes(cls, data: bytes, scheme: str = "https", timestamp: float = 0.0) -> "HttpRequest":
        """Parse an on-the-wire request back into the model.

        The scheme is not on the wire; callers supply it from transport
        context (port 443 ⇒ https).
        """
        head, sep, body = data.partition(b"\r\n\r\n")
        if not sep:
            raise HttpParseError("missing header/body separator")
        method, target, version, headers, host, length_text = _parse_head(head)
        url = parse_url(f"{scheme}://{host}{target}")
        if length_text is not None:
            body = body[: int(length_text)]
        return cls(
            method=method,
            url=url,
            headers=headers,
            body=body,
            http_version=version,
            timestamp=timestamp,
        )


def _parse_head(head: bytes) -> tuple[str, str, str, list[Header], str, str | None]:
    """Parse a request head (no body, no trailing separator).

    Returns ``(method, target, version, headers, host,
    content_length_text)`` so stream walking parses each head exactly
    once — the framing fields fall out of the same pass that builds
    the header list.
    """
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise HttpParseError(f"bad request line: {lines[0]!r}") from exc
    headers: list[Header] = []
    host = ""
    length_text: str | None = None
    for line in lines[1:]:
        name, colon, value = line.partition(":")
        if not colon:
            raise HttpParseError(f"bad header line: {line!r}")
        header = Header(name=name.strip(), value=value.strip())
        headers.append(header)
        lowered = header.name.lower()
        if lowered == "host":
            host = header.value  # last Host wins, as before
        if length_text is None and lowered == "content-length":
            length_text = header.value  # first Content-Length frames
    if not host:
        raise HttpParseError("request missing Host header")
    return method, target, version, headers, host, length_text


def scan_request_stream(
    data: bytes, scheme: str = "https"
) -> tuple[list[HttpRequest], int, bool]:
    """Walk as many complete requests as ``data`` currently holds.

    The incremental-feed core shared by :func:`parse_request_stream`
    and the streaming decoder: returns ``(requests, consumed,
    broken)`` where ``consumed`` is how many bytes of complete
    requests were parsed (an incremental caller drops that prefix and
    retries when more bytes arrive) and ``broken`` means a head failed
    to parse — the batch walker stops for good at that point, so
    incremental callers must stop emitting too.  Requests carry
    ``timestamp=0.0``; callers stamp them.
    """
    requests: list[HttpRequest] = []
    position = 0
    stream_length = len(data)
    while position < stream_length:
        separator = data.find(b"\r\n\r\n", position)
        if separator == -1:
            break
        try:
            method, target, version, headers, host, length_text = _parse_head(
                data[position:separator]
            )
        except HttpParseError:
            return requests, position, True
        body_length = int(length_text) if length_text else 0
        end = separator + 4 + body_length
        if end > stream_length:
            break  # truncated trailing request
        requests.append(
            HttpRequest(
                method=method,
                url=parse_url(f"{scheme}://{host}{target}"),
                headers=headers,
                body=data[separator + 4 : end],
                http_version=version,
            )
        )
        _REQUESTS.inc()
        position = end
    return requests, position, False


def pending_request_need(data) -> int:
    """How long ``data`` must grow before another scan can make progress.

    Companion to :func:`scan_request_stream` for incremental feeds:
    after a scan leaves an unconsumed remainder, this reports the
    minimum total length at which re-scanning could complete the
    pending request — a partial body's framing is read once instead of
    re-walked (and re-copied) on every arriving segment.  A remainder
    whose head cannot parse returns its current length, so the next
    scan runs immediately and flags the stream broken.
    """
    separator = data.find(b"\r\n\r\n")  # bytes and bytearray alike
    if separator == -1:
        return len(data) + 1  # no complete head yet
    try:
        *_, length_text = _parse_head(bytes(data[:separator]))
    except HttpParseError:
        return len(data)
    return separator + 4 + (int(length_text) if length_text else 0)


def parse_request_stream(
    data: bytes, scheme: str = "https", timestamp: float = 0.0
) -> list[HttpRequest]:
    """Parse a pipelined client→server byte stream into requests.

    Connection reuse puts several requests back to back on one TCP
    flow; this walks the stream using Content-Length framing, parsing
    each head once and slicing bodies straight out of the stream.  A
    trailing partial request (truncated capture) is dropped, matching
    how Wireshark-based pipelines behave on incomplete flows.
    """
    requests, _, _ = scan_request_stream(data, scheme=scheme)
    for request in requests:
        request.timestamp = timestamp
    return requests


@dataclass
class HttpResponse:
    """A response; DiffAudit only audits *outgoing* data, so responses
    exist mainly to make HAR files well-formed."""

    status: int = 200
    status_text: str = "OK"
    headers: list[Header] = field(default_factory=list)
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    def header(self, name: str) -> str | None:
        for header in self.headers:
            if header.matches(name):
                return header.value
        return None

    def to_bytes(self) -> bytes:
        lines = [f"{self.http_version} {self.status} {self.status_text}"]
        for header in self.headers:
            lines.append(f"{header.name}: {header.value}")
        names = {header.name.lower() for header in self.headers}
        if "content-length" not in names:
            lines.append(f"Content-Length: {len(self.body)}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body
