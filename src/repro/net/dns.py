"""DNS resolution simulator: A/AAAA records and CNAME chains.

Two pipeline roles:

* **forward resolution** — every FQDN in the universe resolves to a
  deterministic address (the same mapping the traffic generator uses
  for server IPs), so destination analysis can correlate packet
  addresses back to names;
* **CNAME chains** — CDN-fronted hosts alias through their provider,
  and, more interestingly for auditors, *CNAME-cloaked trackers* hide
  behind first-party subdomains (``metrics.example.com`` CNAME
  ``collect.tracker.net``).  FQDN-level block lists miss these; the
  uncloaking analysis in :mod:`repro.destinations.cname` uses this
  resolver to catch them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

MAX_CHAIN_LENGTH = 8


class DnsError(ValueError):
    """Raised on resolution loops or overlong CNAME chains."""


@dataclass(frozen=True)
class DnsAnswer:
    """Outcome of one resolution."""

    name: str  # the queried name
    address: str  # final A record
    chain: tuple[str, ...]  # CNAME chain walked (excluding the query)

    @property
    def canonical_name(self) -> str:
        """The final name the address belongs to."""
        return self.chain[-1] if self.chain else self.name


def synthetic_address(fqdn: str) -> str:
    """Deterministic public-looking IPv4 for a hostname."""
    digest = hashlib.sha256(b"dns|" + fqdn.encode()).digest()
    return f"{34 + digest[0] % 100}.{digest[1]}.{digest[2]}.{1 + digest[3] % 253}"


@dataclass
class Resolver:
    """A stub resolver over an explicit CNAME zone.

    Anything without a CNAME entry resolves directly to its synthetic
    address — the universe has no NXDOMAIN because the generator only
    contacts names it created.
    """

    cnames: dict[str, str] = field(default_factory=dict)

    def add_cname(self, alias: str, target: str) -> None:
        alias, target = alias.lower(), target.lower()
        if alias == target:
            raise DnsError(f"CNAME to self: {alias!r}")
        self.cnames[alias] = target

    def resolve(self, fqdn: str) -> DnsAnswer:
        """Follow CNAMEs to the final A record."""
        fqdn = fqdn.lower().rstrip(".")
        chain: list[str] = []
        current = fqdn
        seen = {current}
        while current in self.cnames:
            current = self.cnames[current]
            if current in seen:
                raise DnsError(f"CNAME loop at {current!r}")
            seen.add(current)
            chain.append(current)
            if len(chain) > MAX_CHAIN_LENGTH:
                raise DnsError(f"CNAME chain too long from {fqdn!r}")
        return DnsAnswer(name=fqdn, address=synthetic_address(current), chain=tuple(chain))

    def is_alias(self, fqdn: str) -> bool:
        return fqdn.lower().rstrip(".") in self.cnames
