"""HAR 1.2 reader/writer (website and desktop traces).

Chrome DevTools and Proxyman export HTTP Archive files; the paper's
pipeline converts them to JSON and extracts outgoing requests
(§3.1.2, §3.2).  This module models the subset of the HAR 1.2 spec the
pipeline consumes — request method/URL/headers/cookies/query/postData —
and round-trips it losslessly for the fields we care about.
"""

from __future__ import annotations

import base64
import datetime as _dt
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.fsutil import atomic_write_text
from repro.net.http import Header, HttpRequest, HttpResponse
from repro.net.url import parse_url


class HarError(ValueError):
    """Raised for malformed HAR documents."""


@dataclass
class HarEntry:
    """One request/response pair plus timing metadata."""

    request: HttpRequest
    response: HttpResponse = field(default_factory=HttpResponse)
    started: float = 0.0  # epoch seconds
    time_ms: float = 0.0
    server_ip: str = ""
    connection: str = ""
    page_ref: str = ""


@dataclass
class Har:
    """A HAR log: creator metadata plus ordered entries."""

    entries: list[HarEntry] = field(default_factory=list)
    creator_name: str = "repro-diffaudit"
    creator_version: str = "1.0"
    comment: str = ""

    def outgoing_requests(self) -> list[HttpRequest]:
        """All requests in trace order — the pipeline's input."""
        return [entry.request for entry in self.entries]


def _epoch_to_iso(epoch: float) -> str:
    # HAR wants ISO 8601; we render UTC with microsecond precision so
    # epoch → ISO → epoch round-trips without drift (millisecond
    # rendering floored away sub-ms bits, which broke replay parity
    # checks on archived artifacts).
    stamp = _dt.datetime.fromtimestamp(epoch, tz=_dt.timezone.utc)
    return stamp.strftime("%Y-%m-%dT%H:%M:%S.") + f"{stamp.microsecond:06d}Z"


def _iso_to_epoch(text: str) -> float:
    stamp = _dt.datetime.fromisoformat(text.replace("Z", "+00:00"))
    if stamp.tzinfo is None:
        # Timezone-naive stamps (some exporters omit the offset) are
        # UTC per the capture hosts' convention; interpreting them in
        # local time skewed timestamps by the machine's UTC offset.
        stamp = stamp.replace(tzinfo=_dt.timezone.utc)
    return stamp.timestamp()


def _request_to_json(request: HttpRequest) -> dict:
    post_data = {}
    if request.body:
        content_type = request.header("Content-Type") or "application/octet-stream"
        try:
            text = request.body.decode("utf-8")
            post_data = {"mimeType": content_type, "text": text}
        except UnicodeDecodeError:
            post_data = {
                "mimeType": content_type,
                "text": base64.b64encode(request.body).decode("ascii"),
                "encoding": "base64",
            }
    return {
        "method": request.method,
        "url": str(request.url),
        "httpVersion": request.http_version,
        "headers": [{"name": h.name, "value": h.value} for h in request.headers],
        "cookies": [{"name": n, "value": v} for n, v in request.cookies()],
        "queryString": [
            {"name": n, "value": v} for n, v in request.url.query_pairs()
        ],
        "headersSize": -1,
        "bodySize": len(request.body),
        **({"postData": post_data} if post_data else {}),
    }


def _response_to_json(response: HttpResponse) -> dict:
    return {
        "status": response.status,
        "statusText": response.status_text,
        "httpVersion": response.http_version,
        "headers": [{"name": h.name, "value": h.value} for h in response.headers],
        "cookies": [],
        "content": {
            "size": len(response.body),
            "mimeType": response.header("Content-Type") or "application/octet-stream",
            "text": response.body.decode("utf-8", errors="replace"),
        },
        "redirectURL": "",
        "headersSize": -1,
        "bodySize": len(response.body),
    }


def har_to_json(har: Har) -> dict:
    """Render a :class:`Har` as a HAR 1.2 JSON document."""
    return {
        "log": {
            "version": "1.2",
            "creator": {"name": har.creator_name, "version": har.creator_version},
            "comment": har.comment,
            "entries": [
                {
                    "startedDateTime": _epoch_to_iso(entry.started),
                    "time": entry.time_ms,
                    "request": _request_to_json(entry.request),
                    "response": _response_to_json(entry.response),
                    "cache": {},
                    "timings": {"send": 0, "wait": entry.time_ms, "receive": 0},
                    "serverIPAddress": entry.server_ip,
                    "connection": entry.connection,
                    **({"pageref": entry.page_ref} if entry.page_ref else {}),
                }
                for entry in har.entries
            ],
        }
    }


def _request_from_json(obj: dict, started: float) -> HttpRequest:
    headers = [Header(h["name"], h["value"]) for h in obj.get("headers", [])]
    body = b""
    post = obj.get("postData")
    if post and post.get("text"):
        if post.get("encoding") == "base64":
            body = base64.b64decode(post["text"])
        else:
            body = post["text"].encode("utf-8")
    return HttpRequest(
        method=obj["method"],
        url=parse_url(obj["url"]),
        headers=headers,
        body=body,
        http_version=obj.get("httpVersion", "HTTP/1.1"),
        timestamp=started,
    )


def _response_from_json(obj: dict) -> HttpResponse:
    headers = [Header(h["name"], h["value"]) for h in obj.get("headers", [])]
    content = obj.get("content", {})
    body = (content.get("text") or "").encode("utf-8")
    return HttpResponse(
        status=obj.get("status", 0),
        status_text=obj.get("statusText", ""),
        headers=headers,
        body=body,
        http_version=obj.get("httpVersion", "HTTP/1.1"),
    )


def har_from_json(doc: dict) -> Har:
    """Parse a HAR 1.2 JSON document; raises :class:`HarError` when the
    required structure is missing."""
    try:
        log = doc["log"]
        raw_entries = log["entries"]
    except (KeyError, TypeError) as exc:
        raise HarError("document missing log.entries") from exc
    creator = log.get("creator", {})
    har = Har(
        creator_name=creator.get("name", "unknown"),
        creator_version=creator.get("version", "0"),
        comment=log.get("comment", ""),
    )
    for raw in raw_entries:
        try:
            started = _iso_to_epoch(raw["startedDateTime"])
            request = _request_from_json(raw["request"], started)
        except (KeyError, ValueError) as exc:
            raise HarError(f"malformed HAR entry: {exc}") from exc
        har.entries.append(
            HarEntry(
                request=request,
                response=_response_from_json(raw.get("response", {})),
                started=started,
                time_ms=raw.get("time", 0.0),
                server_ip=raw.get("serverIPAddress", ""),
                connection=raw.get("connection", ""),
                page_ref=raw.get("pageref", ""),
            )
        )
    return har


def write_har(har: Har, path: str | Path) -> None:
    """Write a HAR file to disk (UTF-8 JSON)."""
    atomic_write_text(Path(path), json.dumps(har_to_json(har), indent=1))


def read_har(path: str | Path) -> Har:
    """Read a HAR file from disk."""
    return har_from_json(json.loads(Path(path).read_text(encoding="utf-8")))
