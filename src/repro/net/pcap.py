"""Binary libpcap (``.pcap``) reader and writer.

Implements the classic pcap file format (magic ``0xa1b2c3d4``,
microsecond timestamps, LINKTYPE_ETHERNET) that PCAPdroid produces.
Both byte orders are read; files are written little-endian like
tcpdump on Android.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

MAGIC_LE = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER_LE = struct.Struct("<IIII")
_RECORD_HEADER_BE = struct.Struct(">IIII")
SNAPLEN = 262144


class PcapError(ValueError):
    """Raised on malformed pcap files."""


@dataclass(frozen=True)
class PcapPacket:
    """One captured record: timestamp plus raw link-layer bytes."""

    timestamp: float
    data: bytes
    orig_len: int | None = None

    @property
    def captured_len(self) -> int:
        return len(self.data)


@dataclass
class PcapFile:
    """An in-memory pcap: global header fields plus packet records."""

    packets: list[PcapPacket] = field(default_factory=list)
    linktype: int = LINKTYPE_ETHERNET
    snaplen: int = SNAPLEN

    def append(self, packet: PcapPacket) -> None:
        self.packets.append(packet)

    def to_bytes(self) -> bytes:
        chunks = [
            _GLOBAL_HEADER.pack(
                MAGIC_LE, 2, 4, 0, 0, self.snaplen, self.linktype
            )
        ]
        for packet in self.packets:
            seconds = int(packet.timestamp)
            micros = int(round((packet.timestamp - seconds) * 1_000_000))
            if micros == 1_000_000:
                seconds += 1
                micros = 0
            orig = packet.orig_len if packet.orig_len is not None else len(packet.data)
            chunks.append(
                _RECORD_HEADER_LE.pack(seconds, micros, len(packet.data), orig)
            )
            chunks.append(packet.data)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PcapFile":
        if len(blob) < _GLOBAL_HEADER.size:
            raise PcapError("file shorter than global header")
        (magic,) = struct.unpack("<I", blob[:4])
        if magic == MAGIC_LE:
            byte_order, nanos = "<", False
        elif magic == 0xD4C3B2A1:
            byte_order, nanos = ">", False
        elif magic == 0xA1B23C4D:
            byte_order, nanos = "<", True
        elif magic == 0x4D3CB2A1:
            byte_order, nanos = ">", True
        else:
            raise PcapError(f"bad magic 0x{magic:08x}")
        header = struct.Struct(byte_order + "IHHiIII")
        (_, major, minor, _tz, _sig, snaplen, linktype) = header.unpack(
            blob[: header.size]
        )
        if (major, minor) != (2, 4):
            raise PcapError(f"unsupported pcap version {major}.{minor}")
        pcap = cls(linktype=linktype, snaplen=snaplen)
        record = _RECORD_HEADER_LE if byte_order == "<" else _RECORD_HEADER_BE
        position = header.size
        divisor = 1_000_000_000 if nanos else 1_000_000
        while position < len(blob):
            if position + record.size > len(blob):
                raise PcapError("truncated record header")
            seconds, fraction, caplen, orig_len = record.unpack(
                blob[position : position + record.size]
            )
            position += record.size
            if position + caplen > len(blob):
                raise PcapError("truncated record body")
            data = blob[position : position + caplen]
            position += caplen
            pcap.packets.append(
                PcapPacket(
                    timestamp=seconds + fraction / divisor,
                    data=data,
                    orig_len=orig_len,
                )
            )
        return pcap

    def write(self, path: str | Path) -> None:
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def read(cls, path: str | Path) -> "PcapFile":
        return cls.from_bytes(Path(path).read_bytes())

    def __len__(self) -> int:
        return len(self.packets)
