"""Binary libpcap (``.pcap``) reader and writer.

Implements the classic pcap file format (magic ``0xa1b2c3d4``,
microsecond timestamps, LINKTYPE_ETHERNET) that PCAPdroid produces.
Both byte orders are read; files are written little-endian like
tcpdump on Android.

Two read APIs share one record walker:

* :class:`PcapReader` — the streaming, zero-copy path.  It walks a
  single ``memoryview`` over the caller's buffer (or an ``mmap`` of an
  on-disk file via :meth:`PcapReader.open`) and yields
  :class:`PcapRecord` views; no packet bytes are copied.  This is what
  the decode pipeline uses.
* :class:`PcapFile` — the eager in-memory model (list of owned
  :class:`PcapPacket` records).  It remains the writer and the
  convenient API for tests and tools; ``from_bytes`` is now a thin
  materialization of the streaming walk.
"""

from __future__ import annotations

import mmap
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, NamedTuple

from repro.fsutil import atomic_write_bytes
from repro.obs.metrics import REGISTRY

# Bound once at import: the per-record fast path is a single
# attribute add on these handles.
_PACKETS = REGISTRY.counter("repro_pcap_packets_total")
_BYTES = REGISTRY.counter("repro_pcap_bytes_total")

MAGIC_LE = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_GLOBAL_HEADER_BE = struct.Struct(">IHHiIII")
_RECORD_HEADER_LE = struct.Struct("<IIII")
_RECORD_HEADER_BE = struct.Struct(">IIII")
_MAGIC_PREFIX = struct.Struct("<I")
SNAPLEN = 262144

# magic -> (global-header struct, record struct, nanosecond timestamps)
_FORMATS = {
    0xA1B2C3D4: (_GLOBAL_HEADER, _RECORD_HEADER_LE, False),
    0xD4C3B2A1: (_GLOBAL_HEADER_BE, _RECORD_HEADER_BE, False),
    0xA1B23C4D: (_GLOBAL_HEADER, _RECORD_HEADER_LE, True),
    0x4D3CB2A1: (_GLOBAL_HEADER_BE, _RECORD_HEADER_BE, True),
}


class PcapError(ValueError):
    """Raised on malformed pcap files."""


class PcapFormat(NamedTuple):
    """Wire format facts a record walker needs, from one global header."""

    record_struct: struct.Struct
    timestamp_divisor: int
    header_size: int
    snaplen: int
    linktype: int


def parse_global_header(buffer) -> PcapFormat:
    """Validate a pcap global header and describe its record format.

    The shared front door for readers that cannot memory-map a whole
    file — the follow-mode tail reader hands in just the first 24
    bytes.  Raises :class:`PcapError` exactly as :class:`PcapReader`
    construction does.
    """
    if len(buffer) < _GLOBAL_HEADER.size:
        raise PcapError("file shorter than global header")
    (magic,) = _MAGIC_PREFIX.unpack(bytes(buffer[:4]))
    try:
        header_struct, record_struct, nanos = _FORMATS[magic]
    except KeyError:
        raise PcapError(f"bad magic 0x{magic:08x}") from None
    (_, major, minor, _tz, _sig, snaplen, linktype) = header_struct.unpack(
        bytes(buffer[: header_struct.size])
    )
    if (major, minor) != (2, 4):
        raise PcapError(f"unsupported pcap version {major}.{minor}")
    return PcapFormat(
        record_struct=record_struct,
        timestamp_divisor=1_000_000_000 if nanos else 1_000_000,
        header_size=header_struct.size,
        snaplen=snaplen,
        linktype=linktype,
    )


class PcapRecord(NamedTuple):
    """One streamed capture record; ``data`` is a zero-copy view.

    The view borrows the reader's buffer: it stays valid until the
    reader is closed (mmap-backed readers), so consumers that keep
    payloads around must take ``bytes(record.data)``.
    """

    timestamp: float
    data: memoryview
    orig_len: int


class PcapReader:
    """Streaming zero-copy pcap reader over one contiguous buffer.

    The global header is validated eagerly (construction fails on a
    truncated or alien file); records are only walked — and only
    validated — as :meth:`iter_packets` advances.  Works as a context
    manager; closing releases the underlying ``mmap`` when the reader
    was opened from a path.
    """

    def __init__(self, buffer) -> None:
        view = memoryview(buffer)
        try:
            if len(view) < _GLOBAL_HEADER.size:
                raise PcapError("file shorter than global header")
            (magic,) = _MAGIC_PREFIX.unpack(view[:4])
            try:
                header_struct, record_struct, nanos = _FORMATS[magic]
            except KeyError:
                raise PcapError(f"bad magic 0x{magic:08x}") from None
            (_, major, minor, _tz, _sig, snaplen, linktype) = header_struct.unpack(
                view[: header_struct.size]
            )
            if (major, minor) != (2, 4):
                raise PcapError(f"unsupported pcap version {major}.{minor}")
        except (PcapError, struct.error):
            # Release the export eagerly so a caller-owned mmap can be
            # closed even while this traceback is still referenced.
            view.release()
            raise
        self._view = view
        self._mmap: mmap.mmap | None = None
        self._file = None
        self._record_struct = record_struct
        self.snaplen = snaplen
        self.linktype = linktype
        self._divisor = 1_000_000_000 if nanos else 1_000_000
        self._header_size = header_struct.size

    @classmethod
    def open(cls, path: str | Path) -> "PcapReader":
        """Memory-map an on-disk capture; no bytes are read up front."""
        handle = open(path, "rb")
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-length file cannot be mapped
            handle.close()
            raise PcapError(f"file shorter than global header: {path}") from exc
        except OSError:
            handle.close()
            raise
        try:
            reader = cls(mapped)
        # repro-lint: disable=X-BARE-EXCEPT — resource guard: the mmap and file handle must close on ANY failure, then re-raise unchanged
        except BaseException:
            mapped.close()
            handle.close()
            raise
        reader._mmap = mapped
        reader._file = handle
        return reader

    def iter_packets(self) -> Iterator[PcapRecord]:
        """Yield each record as a :class:`PcapRecord` view, in order."""
        view = self._view
        record = self._record_struct
        record_size = record.size
        divisor = self._divisor
        position = self._header_size
        end = len(view)
        while position < end:
            if position + record_size > end:
                raise PcapError("truncated record header")
            seconds, fraction, caplen, orig_len = record.unpack(
                view[position : position + record_size]
            )
            position += record_size
            if position + caplen > end:
                raise PcapError("truncated record body")
            _PACKETS.inc()
            _BYTES.inc(caplen)
            yield PcapRecord(
                timestamp=seconds + fraction / divisor,
                data=view[position : position + caplen],
                orig_len=orig_len,
            )
            position += caplen

    def close(self) -> None:
        self._view.release()
        if self._mmap is not None:
            try:
                self._mmap.close()
            # repro-lint: disable=X-SWALLOW — record views still alive (e.g. in an in-flight traceback) pin the mapping; it is reclaimed when they are collected
            except BufferError:
                pass
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class PcapPacket:
    """One captured record: timestamp plus raw link-layer bytes."""

    timestamp: float
    data: bytes
    orig_len: int | None = None

    @property
    def captured_len(self) -> int:
        return len(self.data)


@dataclass
class PcapFile:
    """An in-memory pcap: global header fields plus packet records."""

    packets: list[PcapPacket] = field(default_factory=list)
    linktype: int = LINKTYPE_ETHERNET
    snaplen: int = SNAPLEN

    def append(self, packet: PcapPacket) -> None:
        self.packets.append(packet)

    def to_bytes(self) -> bytes:
        chunks = [
            _GLOBAL_HEADER.pack(
                MAGIC_LE, 2, 4, 0, 0, self.snaplen, self.linktype
            )
        ]
        for packet in self.packets:
            seconds = int(packet.timestamp)
            micros = int(round((packet.timestamp - seconds) * 1_000_000))
            if micros == 1_000_000:
                seconds += 1
                micros = 0
            orig = packet.orig_len if packet.orig_len is not None else len(packet.data)
            chunks.append(
                _RECORD_HEADER_LE.pack(seconds, micros, len(packet.data), orig)
            )
            chunks.append(packet.data)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PcapFile":
        reader = PcapReader(blob)
        return cls(
            packets=[
                PcapPacket(
                    timestamp=record.timestamp,
                    data=bytes(record.data),
                    orig_len=record.orig_len,
                )
                for record in reader.iter_packets()
            ],
            linktype=reader.linktype,
            snaplen=reader.snaplen,
        )

    def write(self, path: str | Path) -> None:
        atomic_write_bytes(Path(path), self.to_bytes())

    @classmethod
    def read(cls, path: str | Path) -> "PcapFile":
        return cls.from_bytes(Path(path).read_bytes())

    def __len__(self) -> int:
        return len(self.packets)
