"""Binary codecs for Ethernet II, IPv4, IPv6, and TCP headers.

Mobile traces are PCAP files whose packets must be decoded down to TCP
payloads before HTTP extraction (paper §3.2).  The codecs here
implement genuine wire formats, including the IPv4 header checksum and
the TCP pseudo-header checksum, so the PCAP round-trip exercises a real
parser rather than a shortcut.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
IPPROTO_TCP = 6
IPPROTO_UDP = 17


class PacketError(ValueError):
    """Raised when bytes do not decode as the expected protocol layer."""


def ipv4_to_bytes(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise PacketError(f"bad IPv4 address {address!r}")
    try:
        return bytes(int(p) for p in parts)
    except ValueError as exc:
        raise PacketError(f"bad IPv4 address {address!r}") from exc


def ipv4_to_str(raw: bytes) -> str:
    if len(raw) != 4:
        raise PacketError("IPv4 address must be 4 bytes")
    return ".".join(str(b) for b in raw)


def mac_to_bytes(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != 6:
        raise PacketError(f"bad MAC address {mac!r}")
    return bytes(int(p, 16) for p in parts)


def mac_to_str(raw: bytes) -> str:
    return ":".join(f"{b:02x}" for b in raw)


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum.

    Summation uses one C-level ``struct.unpack`` call; the carry fold
    happens once at the end (deferred folding is arithmetically
    equivalent and keeps full-scale corpus generation fast).
    """
    if len(data) % 2:
        data += b"\x00"
    count = len(data) // 2
    total = sum(struct.unpack(f"!{count}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class EthernetHeader:
    dst_mac: str = "aa:bb:cc:00:00:01"
    src_mac: str = "aa:bb:cc:00:00:02"
    ethertype: int = ETHERTYPE_IPV4

    SIZE = 14

    def to_bytes(self) -> bytes:
        return (
            mac_to_bytes(self.dst_mac)
            + mac_to_bytes(self.src_mac)
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["EthernetHeader", bytes]:
        if len(data) < cls.SIZE:
            raise PacketError("truncated Ethernet header")
        dst, src = data[:6], data[6:12]
        (ethertype,) = struct.unpack("!H", data[12:14])
        return (
            cls(dst_mac=mac_to_str(dst), src_mac=mac_to_str(src), ethertype=ethertype),
            data[cls.SIZE :],
        )


@dataclass(frozen=True)
class Ipv4Header:
    src: str
    dst: str
    protocol: int = IPPROTO_TCP
    identification: int = 0
    ttl: int = 64
    total_length: int = 0  # filled during encode when 0

    SIZE = 20

    def to_bytes(self, payload_length: int) -> bytes:
        total = self.total_length or (self.SIZE + payload_length)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version + IHL
            0,  # DSCP/ECN
            total,
            self.identification,
            0x4000,  # flags: don't fragment
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            ipv4_to_bytes(self.src),
            ipv4_to_bytes(self.dst),
        )
        checksum = internet_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["Ipv4Header", bytes]:
        if len(data) < cls.SIZE:
            raise PacketError("truncated IPv4 header")
        version_ihl = data[0]
        if version_ihl >> 4 != 4:
            raise PacketError("not an IPv4 packet")
        ihl = (version_ihl & 0x0F) * 4
        if ihl < cls.SIZE or len(data) < ihl:
            raise PacketError("bad IPv4 IHL")
        (total_length,) = struct.unpack("!H", data[2:4])
        (identification,) = struct.unpack("!H", data[4:6])
        ttl = data[8]
        protocol = data[9]
        if internet_checksum(data[:ihl]) != 0:
            raise PacketError("IPv4 header checksum mismatch")
        header = cls(
            src=ipv4_to_str(data[12:16]),
            dst=ipv4_to_str(data[16:20]),
            protocol=protocol,
            identification=identification,
            ttl=ttl,
            total_length=total_length,
        )
        return header, data[ihl:total_length]


def ipv6_to_bytes(address: str) -> bytes:
    """Encode an IPv6 address, supporting one ``::`` compression."""
    if address.count("::") > 1:
        raise PacketError(f"bad IPv6 address {address!r}")
    if "::" in address:
        head, _, tail = address.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise PacketError(f"bad IPv6 address {address!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = address.split(":")
    if len(groups) != 8:
        raise PacketError(f"bad IPv6 address {address!r}")
    try:
        return b"".join(struct.pack("!H", int(group or "0", 16)) for group in groups)
    except ValueError as exc:
        raise PacketError(f"bad IPv6 address {address!r}") from exc


def ipv6_to_str(raw: bytes) -> str:
    """Render 16 bytes as a canonical-ish IPv6 string (no compression)."""
    if len(raw) != 16:
        raise PacketError("IPv6 address must be 16 bytes")
    return ":".join(f"{int.from_bytes(raw[i:i + 2], 'big'):x}" for i in range(0, 16, 2))


@dataclass(frozen=True)
class Ipv6Header:
    """Fixed IPv6 header (RFC 8200), no extension headers."""

    src: str
    dst: str
    next_header: int = IPPROTO_TCP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    SIZE = 40

    def to_bytes(self, payload_length: int) -> bytes:
        first_word = (
            (6 << 28) | (self.traffic_class << 20) | (self.flow_label & 0xFFFFF)
        )
        return (
            struct.pack(
                "!IHBB", first_word, payload_length, self.next_header, self.hop_limit
            )
            + ipv6_to_bytes(self.src)
            + ipv6_to_bytes(self.dst)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["Ipv6Header", bytes]:
        if len(data) < cls.SIZE:
            raise PacketError("truncated IPv6 header")
        (first_word, payload_length, next_header, hop_limit) = struct.unpack(
            "!IHBB", data[:8]
        )
        if first_word >> 28 != 6:
            raise PacketError("not an IPv6 packet")
        header = cls(
            src=ipv6_to_str(data[8:24]),
            dst=ipv6_to_str(data[24:40]),
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(first_word >> 20) & 0xFF,
            flow_label=first_word & 0xFFFFF,
        )
        return header, data[cls.SIZE : cls.SIZE + payload_length]


@dataclass(frozen=True)
class TcpHeader:
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0x18  # PSH|ACK
    window: int = 65535

    SIZE = 20
    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    def to_bytes(self, payload: bytes, src_ip: str, dst_ip: str) -> bytes:
        header = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (5 << 4),  # data offset, no options
            self.flags,
            self.window,
            0,  # checksum placeholder
            0,  # urgent pointer
        )
        pseudo = (
            ipv4_to_bytes(src_ip)
            + ipv4_to_bytes(dst_ip)
            + struct.pack("!BBH", 0, IPPROTO_TCP, len(header) + len(payload))
        )
        checksum = internet_checksum(pseudo + header + payload)
        return header[:16] + struct.pack("!H", checksum) + header[18:] + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> tuple["TcpHeader", bytes]:
        if len(data) < cls.SIZE:
            raise PacketError("truncated TCP header")
        src_port, dst_port, seq, ack = struct.unpack("!HHII", data[:12])
        offset = (data[12] >> 4) * 4
        if offset < cls.SIZE or len(data) < offset:
            raise PacketError("bad TCP data offset")
        flags = data[13]
        (window,) = struct.unpack("!H", data[14:16])
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
        )
        return header, data[offset:]


@dataclass
class Frame:
    """One captured packet, decoded layer by layer."""

    timestamp: float
    eth: EthernetHeader
    ip: Ipv4Header
    tcp: TcpHeader
    payload: bytes = b""

    def to_bytes(self) -> bytes:
        tcp_bytes = self.tcp.to_bytes(self.payload, self.ip.src, self.ip.dst)
        ip_bytes = self.ip.to_bytes(len(tcp_bytes)) + tcp_bytes
        return self.eth.to_bytes() + ip_bytes

    @classmethod
    def from_bytes(cls, data: bytes, timestamp: float = 0.0) -> "Frame":
        eth, rest = EthernetHeader.from_bytes(data)
        if eth.ethertype != ETHERTYPE_IPV4:
            raise PacketError(f"unsupported ethertype 0x{eth.ethertype:04x}")
        ip, rest = Ipv4Header.from_bytes(rest)
        if ip.protocol != IPPROTO_TCP:
            raise PacketError(f"unsupported IP protocol {ip.protocol}")
        tcp, payload = TcpHeader.from_bytes(rest)
        return cls(timestamp=timestamp, eth=eth, ip=ip, tcp=tcp, payload=payload)

    @property
    def flow_key(self) -> tuple[str, int, str, int]:
        """(src_ip, src_port, dst_ip, dst_port) — direction-sensitive."""
        return (self.ip.src, self.tcp.src_port, self.ip.dst, self.tcp.dst_port)
