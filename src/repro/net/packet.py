"""Binary codecs for Ethernet II, IPv4, IPv6, and TCP headers.

Mobile traces are PCAP files whose packets must be decoded down to TCP
payloads before HTTP extraction (paper §3.2).  The codecs here
implement genuine wire formats, including the IPv4 header checksum and
the TCP pseudo-header checksum, so the PCAP round-trip exercises a real
parser rather than a shortcut.

The decode path is zero-copy: every ``from_bytes`` accepts any
buffer-protocol object (``bytes``, ``bytearray``, ``memoryview``) and
returns *views* into it for payload slices, so a full PCAP decode
copies each payload byte exactly once (into the TCP reassembly
buffer).  All struct formats are precompiled at module level, the
ones'-complement checksum keeps a per-length :class:`struct.Struct`
table, and the MAC/IPv4 string codecs are memoized — addresses repeat
constantly inside a capture, so rendering each distinct one once is
enough.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache
from typing import NamedTuple

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
IPPROTO_TCP = 6
IPPROTO_UDP = 17

# Precompiled wire formats — one compile per process, not per call.
_U16 = struct.Struct("!H")
_IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")
_IPV6_FIXED = struct.Struct("!IHBB")
_IPV6_GROUP = struct.Struct("!H")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_TCP_PREFIX = struct.Struct("!HHII")
_TCP_PSEUDO = struct.Struct("!BBH")


class PacketError(ValueError):
    """Raised when bytes do not decode as the expected protocol layer."""


@lru_cache(maxsize=65536)
def ipv4_to_bytes(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise PacketError(f"bad IPv4 address {address!r}")
    try:
        return bytes(int(p) for p in parts)
    except ValueError as exc:
        raise PacketError(f"bad IPv4 address {address!r}") from exc


@lru_cache(maxsize=65536)
def ipv4_to_str(raw: bytes) -> str:
    if len(raw) != 4:
        raise PacketError("IPv4 address must be 4 bytes")
    return ".".join(str(b) for b in raw)


@lru_cache(maxsize=4096)
def mac_to_bytes(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != 6:
        raise PacketError(f"bad MAC address {mac!r}")
    return bytes(int(p, 16) for p in parts)


@lru_cache(maxsize=4096)
def mac_to_str(raw: bytes) -> str:
    return ":".join(f"{b:02x}" for b in raw)


def internet_checksum(data) -> int:
    """RFC 1071 ones'-complement checksum over any bytes-like buffer.

    The end-around-carry sum of 16-bit words is congruent to the
    buffer's big-endian integer value mod 0xFFFF (2**16 ≡ 1 there), so
    the whole summation is one C-level ``int.from_bytes`` — the fold
    only needs the zero-vs-multiple-of-0xFFFF distinction restored
    (folding a nonzero sum never yields zero).
    """
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    value = int.from_bytes(data, "big")
    total = value % 0xFFFF
    if total == 0 and value:
        total = 0xFFFF
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class EthernetHeader:
    dst_mac: str = "aa:bb:cc:00:00:01"
    src_mac: str = "aa:bb:cc:00:00:02"
    ethertype: int = ETHERTYPE_IPV4

    SIZE = 14

    def to_bytes(self) -> bytes:
        return (
            mac_to_bytes(self.dst_mac)
            + mac_to_bytes(self.src_mac)
            + _U16.pack(self.ethertype)
        )

    @classmethod
    def from_bytes(cls, data) -> tuple["EthernetHeader", "memoryview | bytes"]:
        if len(data) < cls.SIZE:
            raise PacketError("truncated Ethernet header")
        dst, src = bytes(data[:6]), bytes(data[6:12])
        (ethertype,) = _U16.unpack(data[12:14])
        return (
            cls(dst_mac=mac_to_str(dst), src_mac=mac_to_str(src), ethertype=ethertype),
            data[cls.SIZE :],
        )


@dataclass(frozen=True)
class Ipv4Header:
    src: str
    dst: str
    protocol: int = IPPROTO_TCP
    identification: int = 0
    ttl: int = 64
    total_length: int = 0  # filled during encode when 0

    SIZE = 20

    def to_bytes(self, payload_length: int) -> bytes:
        total = self.total_length or (self.SIZE + payload_length)
        header = _IPV4_HEADER.pack(
            (4 << 4) | 5,  # version + IHL
            0,  # DSCP/ECN
            total,
            self.identification,
            0x4000,  # flags: don't fragment
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            ipv4_to_bytes(self.src),
            ipv4_to_bytes(self.dst),
        )
        checksum = internet_checksum(header)
        return header[:10] + _U16.pack(checksum) + header[12:]

    @classmethod
    def from_bytes(cls, data) -> tuple["Ipv4Header", "memoryview | bytes"]:
        if len(data) < cls.SIZE:
            raise PacketError("truncated IPv4 header")
        version_ihl = data[0]
        if version_ihl >> 4 != 4:
            raise PacketError("not an IPv4 packet")
        ihl = (version_ihl & 0x0F) * 4
        if ihl < cls.SIZE or len(data) < ihl:
            raise PacketError("bad IPv4 IHL")
        (total_length,) = _U16.unpack(data[2:4])
        (identification,) = _U16.unpack(data[4:6])
        (flags_fragment,) = _U16.unpack(data[6:8])
        if flags_fragment & 0x3FFF:  # MF set or nonzero fragment offset
            raise PacketError("fragmented IPv4 packet")
        ttl = data[8]
        protocol = data[9]
        if internet_checksum(data[:ihl]) != 0:
            raise PacketError("IPv4 header checksum mismatch")
        header = cls(
            src=ipv4_to_str(bytes(data[12:16])),
            dst=ipv4_to_str(bytes(data[16:20])),
            protocol=protocol,
            identification=identification,
            ttl=ttl,
            total_length=total_length,
        )
        return header, data[ihl:total_length]


def ipv6_to_bytes(address: str) -> bytes:
    """Encode an IPv6 address, supporting one ``::`` compression."""
    if address.count("::") > 1:
        raise PacketError(f"bad IPv6 address {address!r}")
    if "::" in address:
        head, _, tail = address.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise PacketError(f"bad IPv6 address {address!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = address.split(":")
    if len(groups) != 8:
        raise PacketError(f"bad IPv6 address {address!r}")
    try:
        return b"".join(_IPV6_GROUP.pack(int(group or "0", 16)) for group in groups)
    except ValueError as exc:
        raise PacketError(f"bad IPv6 address {address!r}") from exc


def ipv6_to_str(raw: bytes) -> str:
    """Render 16 bytes as a canonical-ish IPv6 string (no compression)."""
    if len(raw) != 16:
        raise PacketError("IPv6 address must be 16 bytes")
    return ":".join(f"{int.from_bytes(raw[i:i + 2], 'big'):x}" for i in range(0, 16, 2))


@dataclass(frozen=True)
class Ipv6Header:
    """Fixed IPv6 header (RFC 8200), no extension headers."""

    src: str
    dst: str
    next_header: int = IPPROTO_TCP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    SIZE = 40

    def to_bytes(self, payload_length: int) -> bytes:
        first_word = (
            (6 << 28) | (self.traffic_class << 20) | (self.flow_label & 0xFFFFF)
        )
        return (
            _IPV6_FIXED.pack(
                first_word, payload_length, self.next_header, self.hop_limit
            )
            + ipv6_to_bytes(self.src)
            + ipv6_to_bytes(self.dst)
        )

    @classmethod
    def from_bytes(cls, data) -> tuple["Ipv6Header", "memoryview | bytes"]:
        if len(data) < cls.SIZE:
            raise PacketError("truncated IPv6 header")
        (first_word, payload_length, next_header, hop_limit) = _IPV6_FIXED.unpack(
            data[:8]
        )
        if first_word >> 28 != 6:
            raise PacketError("not an IPv6 packet")
        header = cls(
            src=ipv6_to_str(bytes(data[8:24])),
            dst=ipv6_to_str(bytes(data[24:40])),
            next_header=next_header,
            hop_limit=hop_limit,
            traffic_class=(first_word >> 20) & 0xFF,
            flow_label=first_word & 0xFFFFF,
        )
        return header, data[cls.SIZE : cls.SIZE + payload_length]


@dataclass(frozen=True)
class TcpHeader:
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0x18  # PSH|ACK
    window: int = 65535

    SIZE = 20
    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    def to_bytes(self, payload: bytes, src_ip: str, dst_ip: str) -> bytes:
        header = _TCP_HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (5 << 4),  # data offset, no options
            self.flags,
            self.window,
            0,  # checksum placeholder
            0,  # urgent pointer
        )
        pseudo = (
            ipv4_to_bytes(src_ip)
            + ipv4_to_bytes(dst_ip)
            + _TCP_PSEUDO.pack(0, IPPROTO_TCP, len(header) + len(payload))
        )
        checksum = internet_checksum(pseudo + header + payload)
        return header[:16] + _U16.pack(checksum) + header[18:] + payload

    @classmethod
    def from_bytes(cls, data) -> tuple["TcpHeader", "memoryview | bytes"]:
        if len(data) < cls.SIZE:
            raise PacketError("truncated TCP header")
        src_port, dst_port, seq, ack = _TCP_PREFIX.unpack(data[:12])
        offset = (data[12] >> 4) * 4
        if offset < cls.SIZE or len(data) < offset:
            raise PacketError("bad TCP data offset")
        flags = data[13]
        (window,) = _U16.unpack(data[14:16])
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
        )
        return header, data[offset:]


class TcpSegment(NamedTuple):
    """The decode path's view of one TCP packet — just the fields flow
    reassembly consumes, no per-layer header objects.

    ``payload`` may be a zero-copy view into the capture buffer (same
    lifetime rules as :class:`Frame.payload`).
    """

    timestamp: float
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    seq: int
    flags: int
    payload: "bytes | memoryview"

    @property
    def flow_key(self) -> tuple[str, int, str, int]:
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port)


def parse_tcp_segment(data, timestamp: float = 0.0) -> TcpSegment:
    """Parse Ethernet/IPv4/TCP layers straight into a :class:`TcpSegment`.

    Validates exactly what :meth:`Frame.from_bytes` validates — same
    ethertype/version/IHL/checksum/offset rejections, same
    :class:`PacketError` — but skips building the three header
    dataclasses, which dominates per-packet decode cost.  The slower
    :class:`Frame` API remains the general-purpose decoder (and the
    eager/streaming parity tests hold the two to identical results).
    """
    # Ethernet II
    if len(data) < 14:
        raise PacketError("truncated Ethernet header")
    (ethertype,) = _U16.unpack(data[12:14])
    if ethertype != ETHERTYPE_IPV4:
        raise PacketError(f"unsupported ethertype 0x{ethertype:04x}")
    ip = data[14:]
    # IPv4
    if len(ip) < Ipv4Header.SIZE:
        raise PacketError("truncated IPv4 header")
    version_ihl = ip[0]
    if version_ihl >> 4 != 4:
        raise PacketError("not an IPv4 packet")
    ihl = (version_ihl & 0x0F) * 4
    if ihl < Ipv4Header.SIZE or len(ip) < ihl:
        raise PacketError("bad IPv4 IHL")
    if ip[9] != IPPROTO_TCP:
        raise PacketError(f"unsupported IP protocol {ip[9]}")
    (flags_fragment,) = _U16.unpack(ip[6:8])
    if flags_fragment & 0x3FFF:  # MF set or nonzero fragment offset
        raise PacketError("fragmented IPv4 packet")
    if internet_checksum(ip[:ihl]) != 0:
        raise PacketError("IPv4 header checksum mismatch")
    (total_length,) = _U16.unpack(ip[2:4])
    tcp = ip[ihl:total_length]
    # TCP
    if len(tcp) < TcpHeader.SIZE:
        raise PacketError("truncated TCP header")
    src_port, dst_port, seq, _ack = _TCP_PREFIX.unpack(tcp[:12])
    offset = (tcp[12] >> 4) * 4
    if offset < TcpHeader.SIZE or len(tcp) < offset:
        raise PacketError("bad TCP data offset")
    return TcpSegment(
        timestamp=timestamp,
        src_ip=ipv4_to_str(bytes(ip[12:16])),
        src_port=src_port,
        dst_ip=ipv4_to_str(bytes(ip[16:20])),
        dst_port=dst_port,
        seq=seq,
        flags=tcp[13],
        payload=tcp[offset:],
    )


@dataclass
class Frame:
    """One captured packet, decoded layer by layer.

    When decoded from a buffer, ``payload`` is a zero-copy view into
    it; the view stays valid only while the backing buffer does (for
    mmap-backed reads, until the :class:`repro.net.pcap.PcapReader` is
    closed).  Consumers that outlive the buffer must take ``bytes()``.
    """

    timestamp: float
    eth: EthernetHeader
    ip: Ipv4Header
    tcp: TcpHeader
    payload: "bytes | memoryview" = b""

    def to_bytes(self) -> bytes:
        tcp_bytes = self.tcp.to_bytes(bytes(self.payload), self.ip.src, self.ip.dst)
        ip_bytes = self.ip.to_bytes(len(tcp_bytes)) + tcp_bytes
        return self.eth.to_bytes() + ip_bytes

    @classmethod
    def from_bytes(cls, data, timestamp: float = 0.0) -> "Frame":
        eth, rest = EthernetHeader.from_bytes(data)
        if eth.ethertype != ETHERTYPE_IPV4:
            raise PacketError(f"unsupported ethertype 0x{eth.ethertype:04x}")
        ip, rest = Ipv4Header.from_bytes(rest)
        if ip.protocol != IPPROTO_TCP:
            raise PacketError(f"unsupported IP protocol {ip.protocol}")
        tcp, payload = TcpHeader.from_bytes(rest)
        return cls(timestamp=timestamp, eth=eth, ip=ip, tcp=tcp, payload=payload)

    @property
    def flow_key(self) -> tuple[str, int, str, int]:
        """(src_ip, src_port, dst_ip, dst_port) — direction-sensitive."""
        return (self.ip.src, self.tcp.src_port, self.ip.dst, self.tcp.dst_port)
