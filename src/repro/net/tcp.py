"""TCP segmentation and flow reassembly.

The generator segments each HTTP request into MSS-sized TCP segments
with proper sequence numbers; the post-processor reassembles flows from
possibly out-of-order, possibly duplicated segments, reproducing the
paper's per-service TCP-flow accounting (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packet import (
    EthernetHeader,
    Frame,
    Ipv4Header,
    TcpHeader,
    TcpSegment,
)
from repro.obs.metrics import REGISTRY

_SEGMENTS = REGISTRY.counter("repro_tcp_segments_total")
_PAYLOAD_BYTES = REGISTRY.counter("repro_tcp_payload_bytes_total")

DEFAULT_MSS = 1400

# Bounds on the per-flow ``consumed`` seq set (duplicate detection for
# already-compacted segments): past this many entries, seqs further
# than the window behind the compaction point are pruned.  A bit-exact
# retransmit of pruned data is still dropped by the covered-bytes
# check; only a *content-inconsistent* same-seq retransmit arriving
# from further back than the window could slip an extension in, and
# the simulated link never corrupts payloads.
_CONSUMED_LIMIT = 65536
_CONSUMED_WINDOW = 1 << 24  # 16 MiB of stream


@dataclass(frozen=True)
class FlowId:
    """Canonical (client → server) flow identity."""

    client_ip: str
    client_port: int
    server_ip: str
    server_port: int

    def __str__(self) -> str:
        return (
            f"{self.client_ip}:{self.client_port}->"
            f"{self.server_ip}:{self.server_port}"
        )


def segment_request(
    payload: bytes,
    flow: FlowId,
    timestamp: float,
    isn: int = 1,
    mss: int = DEFAULT_MSS,
    with_handshake: bool = True,
) -> list[Frame]:
    """Turn request bytes into SYN + data segments + FIN frames.

    Only the client→server direction is emitted — DiffAudit audits data
    *leaving* the device (paper §3.2).
    """
    frames: list[Frame] = []
    eth = EthernetHeader()
    seq = isn

    def make_frame(tcp: TcpHeader, data: bytes, offset_us: int) -> Frame:
        ip = Ipv4Header(src=flow.client_ip, dst=flow.server_ip)
        return Frame(
            timestamp=timestamp + offset_us * 1e-6,
            eth=eth,
            ip=ip,
            tcp=tcp,
            payload=data,
        )

    step = 0
    if with_handshake:
        frames.append(
            make_frame(
                TcpHeader(
                    src_port=flow.client_port,
                    dst_port=flow.server_port,
                    seq=seq,
                    flags=TcpHeader.FLAG_SYN,
                ),
                b"",
                step,
            )
        )
        seq += 1  # SYN consumes one sequence number
        step += 1

    for start in range(0, len(payload), mss):
        chunk = payload[start : start + mss]
        frames.append(
            make_frame(
                TcpHeader(
                    src_port=flow.client_port,
                    dst_port=flow.server_port,
                    seq=seq,
                    flags=TcpHeader.FLAG_PSH | TcpHeader.FLAG_ACK,
                ),
                chunk,
                step,
            )
        )
        seq += len(chunk)
        step += 1

    if with_handshake:
        frames.append(
            make_frame(
                TcpHeader(
                    src_port=flow.client_port,
                    dst_port=flow.server_port,
                    seq=seq,
                    flags=TcpHeader.FLAG_FIN | TcpHeader.FLAG_ACK,
                ),
                b"",
                step,
            )
        )
    return frames


@dataclass
class _FlowState:
    isn: int | None = None
    # seq -> payload for segments *beyond* the compacted prefix; values
    # may be zero-copy views into the capture buffer (they are copied
    # exactly once, into the reassembly bytearray, when compacted).
    segments: dict[int, "bytes | memoryview"] = field(default_factory=dict)
    first_timestamp: float = 0.0
    finished: bool = False
    # Contiguous prefix already compacted out of ``segments``.  Batch
    # callers never drain it, so ``flows()`` sees the whole stream;
    # streaming callers hand it downstream via ``drain_ready`` and
    # release the memory long before the flow ends.
    assembled: bytearray = field(default_factory=bytearray)
    expected: int | None = None  # next seq after the compacted prefix
    drained: int = 0  # bytes already handed out via drain_ready
    pending: int = 0  # payload bytes currently held in ``segments``
    # Seq keys whose first copy was already compacted away.  Keeps the
    # incremental path byte-identical to the batch walk, which keeps
    # the *first* copy of a seq and drops later (even longer) ones.
    consumed: set[int] = field(default_factory=set)
    last_activity: float = 0.0  # stream time of the last segment
    lru_tick: int = 0  # arrival counter, for LRU eviction


@dataclass
class ReassembledFlow:
    """One client→server byte stream recovered from segments."""

    flow: FlowId
    data: bytes
    first_timestamp: float
    complete: bool


class TcpReassembler:
    """Order-tolerant reassembly of client→server streams.

    Duplicate segments are dropped by sequence number; overlapping
    retransmissions keep the first copy (sufficient for the simulated
    link, which never corrupts payloads).  Holes mark a flow incomplete
    rather than raising — real traces are messy and the paper includes
    undecryptable/partial traffic in its counts.

    The reassembler is usable two ways, with byte-identical results:

    * **batch** — feed everything, then :meth:`flows` assembles each
      stream once (the original API, still what the batch decode path
      uses);
    * **incremental** — after each :meth:`add_segment`, the newly
      contiguous prefix of the segment's flow is available from
      :meth:`drain_ready` (and is *released* from the reassembler, so
      memory holds only out-of-order segments and undrained bytes);
      :meth:`pop_flow` finalizes one flow — remaining segments are
      walked with exactly the batch trimming/hole rules — and forgets
      it.  :meth:`buffered_bytes`, :meth:`idle_flows` and
      :meth:`lru_flow` support the streaming session's idle-timeout +
      byte-budget eviction.

    The two paths agree because compaction applies the same
    first-copy-wins / overlap-trim rules the batch walk applies, in
    the same seq order; the one assumption is a single ISN per flow
    (a duplicated SYN is fine, a *conflicting* one is degenerate).
    """

    def __init__(self) -> None:
        self._flows: dict[FlowId, _FlowState] = {}
        self._buffered = 0  # payload bytes held across all flows
        self._tick = 0  # arrival counter for LRU bookkeeping

    def add_frame(self, frame: Frame) -> None:
        """Feed one fully decoded :class:`Frame` (general-purpose API)."""
        self.add_segment(
            TcpSegment(
                timestamp=frame.timestamp,
                src_ip=frame.ip.src,
                src_port=frame.tcp.src_port,
                dst_ip=frame.ip.dst,
                dst_port=frame.tcp.dst_port,
                seq=frame.tcp.seq,
                flags=frame.tcp.flags,
                payload=frame.payload,
            )
        )

    def add_segment(self, segment: TcpSegment) -> None:
        """Feed one decode-path :class:`TcpSegment` (the hot path)."""
        _SEGMENTS.inc()
        flow = FlowId(
            client_ip=segment.src_ip,
            client_port=segment.src_port,
            server_ip=segment.dst_ip,
            server_port=segment.dst_port,
        )
        state = self._flows.setdefault(flow, _FlowState())
        if not state.segments and state.isn is None and not state.assembled:
            state.first_timestamp = segment.timestamp
        state.first_timestamp = min(
            state.first_timestamp or segment.timestamp, segment.timestamp
        )
        state.last_activity = segment.timestamp
        self._tick += 1
        state.lru_tick = self._tick
        if segment.flags & TcpHeader.FLAG_SYN:
            state.isn = segment.seq
            if state.expected is None:
                state.expected = segment.seq + 1
                self._compact(state)
            return
        if segment.flags & TcpHeader.FLAG_FIN:
            state.finished = True
        if segment.payload:
            if segment.seq in state.segments or segment.seq in state.consumed:
                return  # duplicate seq: the first copy wins, as in batch
            if state.expected is not None and (
                segment.seq + len(segment.payload) <= state.expected
            ):
                # Entirely covered by the compacted prefix — the batch
                # walk would trim it to nothing; remember the seq so a
                # later same-seq copy is still treated as a duplicate.
                state.consumed.add(segment.seq)
                return
            state.segments[segment.seq] = segment.payload
            state.pending += len(segment.payload)
            self._buffered += len(segment.payload)
            _PAYLOAD_BYTES.inc(len(segment.payload))
            self._compact(state)

    def _compact(self, state: _FlowState) -> None:
        """Move the contiguous in-order prefix into ``assembled``.

        Applies exactly the batch walk's rules — first copy wins,
        overlaps trimmed against ``expected`` — but never jumps a
        hole: bytes past a gap wait in ``segments`` until the gap
        fills or the flow is finalized.
        """
        if state.expected is None:
            return
        while state.segments:
            seq = min(state.segments)
            if seq > state.expected:
                return  # hole — a later segment may still fill it
            data = state.segments.pop(seq)
            state.consumed.add(seq)
            size = len(data)
            state.pending -= size
            overlap = state.expected - seq
            if overlap >= size:
                self._buffered -= size
                continue  # full duplicate
            if overlap:
                data = data[overlap:]
            state.assembled += data
            self._buffered -= size - len(data)
            state.expected += len(data)
        if len(state.consumed) > _CONSUMED_LIMIT:
            # A long-lived flow would otherwise accumulate one entry
            # per segment forever — unbounded memory that the byte
            # budget cannot see.  Keep only the recent window.
            horizon = state.expected - _CONSUMED_WINDOW
            state.consumed = {seq for seq in state.consumed if seq >= horizon}

    # -- batch API -------------------------------------------------------

    def flows(self) -> list[ReassembledFlow]:
        """Reassemble every tracked flow in first-seen order."""
        out: list[ReassembledFlow] = []
        for flow, state in self._flows.items():
            tail, complete = self._tail(state)
            out.append(
                ReassembledFlow(
                    flow=flow,
                    data=bytes(state.assembled) + tail,
                    first_timestamp=state.first_timestamp,
                    complete=complete and state.finished,
                )
            )
        return out

    @staticmethod
    def _tail(state: _FlowState) -> tuple[bytes, bool]:
        """Assemble everything past the compacted prefix — O(n log n).

        The finalize-time walk: remaining out-of-order segments are
        visited in seq order with the batch trimming rules, and holes
        are jumped (marking the flow incomplete) exactly as the
        original single-shot ``_assemble`` did.  Non-destructive, so
        ``flows()`` stays idempotent.
        """
        if not state.segments:
            return b"", True
        expected = state.expected
        if expected is None:
            expected = (
                state.isn + 1 if state.isn is not None else min(state.segments)
            )
        buffer = bytearray()
        complete = True
        for seq in sorted(state.segments):
            data = state.segments[seq]
            if seq > expected:
                complete = False  # hole
            elif seq < expected:
                overlap = expected - seq
                if overlap >= len(data):
                    continue  # full duplicate
                data = data[overlap:]
                seq = expected
            buffer += data
            expected = seq + len(data)
        return bytes(buffer), complete

    # -- incremental API -------------------------------------------------

    def drain_ready(self, flow: FlowId) -> bytes:
        """Take (and release) a flow's newly contiguous bytes.

        Returns ``b""`` when nothing new is contiguous.  Drained bytes
        leave the reassembler entirely — a later :meth:`pop_flow`
        returns only what arrived after the drain — so the caller owns
        feeding them onward in order.
        """
        state = self._flows.get(flow)
        if state is None or not state.assembled:
            return b""
        out = bytes(state.assembled)
        state.assembled.clear()
        state.drained += len(out)
        self._buffered -= len(out)
        return out

    def pop_flow(self, flow: FlowId) -> ReassembledFlow:
        """Finalize one flow and forget it.

        ``data`` is everything not yet drained: the undrained
        compacted prefix plus the finalize-time walk over remaining
        out-of-order segments (batch rules, holes jumped).
        """
        state = self._flows.pop(flow)
        tail, complete = self._tail(state)
        self._buffered -= len(state.assembled) + state.pending
        return ReassembledFlow(
            flow=flow,
            data=bytes(state.assembled) + tail,
            first_timestamp=state.first_timestamp,
            complete=complete and state.finished,
        )

    def buffered_bytes(self) -> int:
        """Payload bytes currently held (undrained prefix + pending)."""
        return self._buffered

    def flow_ids(self) -> list[FlowId]:
        """Tracked flows in first-seen order."""
        return list(self._flows)

    def last_activity(self, flow: FlowId) -> float:
        return self._flows[flow].last_activity

    def idle_flows(self, now: float, timeout: float) -> list[FlowId]:
        """Flows with no segment for ``timeout`` stream-time seconds."""
        return [
            flow
            for flow, state in self._flows.items()
            if now - state.last_activity > timeout
        ]

    def lru_flow(self) -> FlowId | None:
        """The least recently active flow (byte-budget eviction victim)."""
        if not self._flows:
            return None
        return min(self._flows, key=lambda flow: self._flows[flow].lru_tick)

    def __len__(self) -> int:
        return len(self._flows)
