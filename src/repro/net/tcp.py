"""TCP segmentation and flow reassembly.

The generator segments each HTTP request into MSS-sized TCP segments
with proper sequence numbers; the post-processor reassembles flows from
possibly out-of-order, possibly duplicated segments, reproducing the
paper's per-service TCP-flow accounting (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packet import (
    EthernetHeader,
    Frame,
    Ipv4Header,
    TcpHeader,
    TcpSegment,
)

DEFAULT_MSS = 1400


@dataclass(frozen=True)
class FlowId:
    """Canonical (client → server) flow identity."""

    client_ip: str
    client_port: int
    server_ip: str
    server_port: int

    def __str__(self) -> str:
        return (
            f"{self.client_ip}:{self.client_port}->"
            f"{self.server_ip}:{self.server_port}"
        )


def segment_request(
    payload: bytes,
    flow: FlowId,
    timestamp: float,
    isn: int = 1,
    mss: int = DEFAULT_MSS,
    with_handshake: bool = True,
) -> list[Frame]:
    """Turn request bytes into SYN + data segments + FIN frames.

    Only the client→server direction is emitted — DiffAudit audits data
    *leaving* the device (paper §3.2).
    """
    frames: list[Frame] = []
    eth = EthernetHeader()
    seq = isn

    def make_frame(tcp: TcpHeader, data: bytes, offset_us: int) -> Frame:
        ip = Ipv4Header(src=flow.client_ip, dst=flow.server_ip)
        return Frame(
            timestamp=timestamp + offset_us * 1e-6,
            eth=eth,
            ip=ip,
            tcp=tcp,
            payload=data,
        )

    step = 0
    if with_handshake:
        frames.append(
            make_frame(
                TcpHeader(
                    src_port=flow.client_port,
                    dst_port=flow.server_port,
                    seq=seq,
                    flags=TcpHeader.FLAG_SYN,
                ),
                b"",
                step,
            )
        )
        seq += 1  # SYN consumes one sequence number
        step += 1

    for start in range(0, len(payload), mss):
        chunk = payload[start : start + mss]
        frames.append(
            make_frame(
                TcpHeader(
                    src_port=flow.client_port,
                    dst_port=flow.server_port,
                    seq=seq,
                    flags=TcpHeader.FLAG_PSH | TcpHeader.FLAG_ACK,
                ),
                chunk,
                step,
            )
        )
        seq += len(chunk)
        step += 1

    if with_handshake:
        frames.append(
            make_frame(
                TcpHeader(
                    src_port=flow.client_port,
                    dst_port=flow.server_port,
                    seq=seq,
                    flags=TcpHeader.FLAG_FIN | TcpHeader.FLAG_ACK,
                ),
                b"",
                step,
            )
        )
    return frames


@dataclass
class _FlowState:
    isn: int | None = None
    # seq -> payload; values may be zero-copy views into the capture
    # buffer (they are copied exactly once, into the reassembly
    # bytearray, when the flow is assembled).
    segments: dict[int, "bytes | memoryview"] = field(default_factory=dict)
    first_timestamp: float = 0.0
    finished: bool = False


@dataclass
class ReassembledFlow:
    """One client→server byte stream recovered from segments."""

    flow: FlowId
    data: bytes
    first_timestamp: float
    complete: bool


class TcpReassembler:
    """Order-tolerant reassembly of client→server streams.

    Duplicate segments are dropped by sequence number; overlapping
    retransmissions keep the first copy (sufficient for the simulated
    link, which never corrupts payloads).  Holes mark a flow incomplete
    rather than raising — real traces are messy and the paper includes
    undecryptable/partial traffic in its counts.
    """

    def __init__(self) -> None:
        self._flows: dict[FlowId, _FlowState] = {}

    def add_frame(self, frame: Frame) -> None:
        """Feed one fully decoded :class:`Frame` (general-purpose API)."""
        self.add_segment(
            TcpSegment(
                timestamp=frame.timestamp,
                src_ip=frame.ip.src,
                src_port=frame.tcp.src_port,
                dst_ip=frame.ip.dst,
                dst_port=frame.tcp.dst_port,
                seq=frame.tcp.seq,
                flags=frame.tcp.flags,
                payload=frame.payload,
            )
        )

    def add_segment(self, segment: TcpSegment) -> None:
        """Feed one decode-path :class:`TcpSegment` (the hot path)."""
        flow = FlowId(
            client_ip=segment.src_ip,
            client_port=segment.src_port,
            server_ip=segment.dst_ip,
            server_port=segment.dst_port,
        )
        state = self._flows.setdefault(flow, _FlowState())
        if not state.segments and state.isn is None:
            state.first_timestamp = segment.timestamp
        state.first_timestamp = min(
            state.first_timestamp or segment.timestamp, segment.timestamp
        )
        if segment.flags & TcpHeader.FLAG_SYN:
            state.isn = segment.seq
            return
        if segment.flags & TcpHeader.FLAG_FIN:
            state.finished = True
        if segment.payload:
            state.segments.setdefault(segment.seq, segment.payload)

    def flows(self) -> list[ReassembledFlow]:
        """Reassemble every tracked flow in first-seen order."""
        out: list[ReassembledFlow] = []
        for flow, state in self._flows.items():
            data, complete = self._assemble(state)
            out.append(
                ReassembledFlow(
                    flow=flow,
                    data=data,
                    first_timestamp=state.first_timestamp,
                    complete=complete,
                )
            )
        return out

    @staticmethod
    def _assemble(state: _FlowState) -> tuple[bytes, bool]:
        """Stitch segments into one buffer — O(n) in the stream length.

        Payloads append to a single preallocation-friendly
        ``bytearray`` (amortized-linear growth), so reassembling a
        flow never re-copies previously appended bytes the way
        repeated ``bytes`` concatenation would.
        """
        if not state.segments:
            return b"", state.finished
        expected = state.isn + 1 if state.isn is not None else min(state.segments)
        buffer = bytearray()
        complete = True
        for seq in sorted(state.segments):
            data = state.segments[seq]
            if seq > expected:
                complete = False  # hole
            elif seq < expected:
                overlap = expected - seq
                if overlap >= len(data):
                    continue  # full duplicate
                data = data[overlap:]
                seq = expected
            buffer += data
            expected = seq + len(data)
        return bytes(buffer), complete and state.finished

    def __len__(self) -> int:
        return len(self._flows)
