"""Frida certificate-pinning bypass policy (paper §3.1.1).

The study rooted the device, installed PCAPdroid's CA, and used Frida
to bypass certificate pinning — yet still could not decrypt everything
("Recall that we were not able to collect all the network traffic in
clear-text on the mobile apps", §4.1).  :class:`FridaPolicy` models
that: each flow is either *bypassed* (its TLS secret lands in the key
log) or *pinned* (encrypted bytes only).

The traffic generator marks flows that must stay opaque (structural
mobile-only gaps in Table 4); on top of that the policy fails a random
fraction of otherwise-decryptable flows, reproducing the study's
partial mobile visibility.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class FridaPolicy:
    """Deterministic per-connection bypass outcome.

    ``bypass_rate`` is the probability a pinned-by-the-app connection is
    still successfully hooked; flows the generator forces opaque are
    never bypassed.
    """

    bypass_rate: float = 0.92
    seed: int = 41

    def _bucket(self, connection_id: str) -> float:
        digest = hashlib.sha256(
            f"frida|{self.seed}|{connection_id}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decryptable(self, connection_id: str, forced_opaque: bool) -> bool:
        """Whether the connection's secret reaches the key log."""
        if forced_opaque:
            return False
        return self._bucket(connection_id) < self.bypass_rate
