"""Chrome DevTools Network-panel HAR export simulation (paper §3.1.2).

The study recorded website sessions with the Network panel ("Preserve
logs" enabled), then exported HAR.  This capture renders generated web
traces into the same HAR 1.2 shape — including the ``connection`` and
``serverIPAddress`` fields DevTools emits, which the dataset summary
uses for TCP-flow accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capture.base import CaptureArtifact, TraceMeta
from repro.net.har import Har, HarEntry
from repro.net.http import Header, HttpResponse
from repro.services.generator import RawTrace, ip_for


@dataclass
class HarArtifact(CaptureArtifact):
    """A HAR export plus trace identity."""

    har: Har = field(default_factory=Har)

    @property
    def packet_count(self) -> int:
        """Outgoing request count — the HAR-side unit of Table 1."""
        return len(self.har.entries)


@dataclass
class DevToolsCapture:
    """Capture engine: web :class:`RawTrace` → HAR artifact."""

    creator_name: str = "WebInspector"
    creator_version: str = "537.36"

    def _response_for(self, status: int = 200) -> HttpResponse:
        return HttpResponse(
            status=status,
            status_text="OK" if status == 200 else "No Content",
            headers=[Header("Content-Type", "application/json")],
            body=b"{}" if status == 200 else b"",
        )

    def capture(self, trace: RawTrace) -> HarArtifact:
        meta = TraceMeta(
            service=trace.service,
            platform=trace.platform,
            kind=trace.kind,
            age=trace.age,
        )
        har = Har(
            creator_name=self.creator_name,
            creator_version=self.creator_version,
            comment=meta.name,
        )
        # DevTools numbers connections; keep a stable id per generator
        # connection so TCP-flow accounting survives the round trip.
        connection_ids: dict[str, str] = {}
        for traced in trace.requests:
            connection = connection_ids.setdefault(
                traced.connection, str(100_000 + len(connection_ids))
            )
            status = 204 if traced.request.url.path.startswith("/b/") else 200
            har.entries.append(
                HarEntry(
                    request=traced.request,
                    response=self._response_for(status),
                    started=traced.request.timestamp,
                    time_ms=12.0,
                    server_ip=ip_for(traced.request.url.host),
                    connection=connection,
                    page_ref="page_1",
                )
            )
        return HarArtifact(meta=meta, har=har)
