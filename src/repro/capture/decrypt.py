"""Keylog-based PCAP decryption — the ``editcap`` + Wireshark stand-in.

The study embedded TLS keys into the PCAP with ``editcap
--inject-secrets`` and let Wireshark produce decrypted traffic (§3.2).
This module does the equivalent: reassemble TCP flows from the PCAP,
look each flow's client random up in the key log, decrypt what it can,
and parse the plaintext into HTTP requests.  Flows whose secret is
missing (certificate-pinned) surface as *opaque contacts*: destination
(from the SNI) and frame count only — the paper keeps encrypted
traffic in its packet/domain accounting (§3.1.1).

Decoding is streaming and zero-copy: raw bytes (or an mmap-backed
on-disk file, via a :class:`~repro.net.pcap.PcapReader`) are walked
record by record, each frame's TCP payload is a view into the capture
buffer, and payload bytes are copied exactly once — into the flow
reassembly buffer.  Passing an eager :class:`~repro.net.pcap.PcapFile`
still works and takes the identical code path over its in-memory
packets, which is what the streaming-vs-eager parity tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.net.http import HttpRequest, parse_request_stream
from repro.net.packet import PacketError, parse_tcp_segment
from repro.net.pcap import PcapFile, PcapReader
from repro.net.tcp import TcpReassembler
from repro.net.tls import KeyLog, TlsError, decrypt_stream, looks_like_tls, unwrap_hello


@dataclass(frozen=True)
class OpaqueContact:
    """A flow we could not decrypt: destination knowledge only."""

    host: str
    first_timestamp: float
    frame_count: int


@dataclass
class DecryptedRequest:
    """One recovered outgoing request with its flow identity."""

    request: HttpRequest
    flow: str  # canonical flow id string


@dataclass
class MobileDecryption:
    """Everything recoverable from one mobile artifact."""

    requests: list[DecryptedRequest] = field(default_factory=list)
    opaque: list[OpaqueContact] = field(default_factory=list)
    packet_count: int = 0
    flow_count: int = 0
    undecryptable_flows: int = 0


def decrypt_mobile_artifact(
    pcap: "PcapFile | bytes | bytearray | memoryview | str | Path",
    keylog: KeyLog | str,
) -> MobileDecryption:
    """Recover plaintext requests from a PCAP + key-log pair.

    ``pcap`` may be raw capture bytes (decoded zero-copy in place), a
    filesystem path (memory-mapped, never fully read into Python
    bytes), or an eager :class:`PcapFile`.
    """
    if isinstance(keylog, str):
        keylog = KeyLog.from_text(keylog)
    if isinstance(pcap, (str, Path)):
        with PcapReader.open(pcap) as reader:
            return _decrypt_packets(
                ((r.timestamp, r.data) for r in reader.iter_packets()), keylog
            )
    if isinstance(pcap, PcapFile):
        return _decrypt_packets(
            ((p.timestamp, p.data) for p in pcap.packets), keylog
        )
    reader = PcapReader(pcap)
    return _decrypt_packets(
        ((r.timestamp, r.data) for r in reader.iter_packets()), keylog
    )


def _decrypt_packets(
    packets: Iterable[tuple[float, "bytes | memoryview"]], keylog: KeyLog
) -> MobileDecryption:
    """The shared streaming core: frames → flows → TLS → HTTP."""
    result = MobileDecryption()
    reassembler = TcpReassembler()
    frame_counts: dict[str, int] = {}
    packet_count = 0
    for timestamp, data in packets:
        packet_count += 1
        try:
            segment = parse_tcp_segment(data, timestamp=timestamp)
        # repro-lint: disable=X-SWALLOW — non-TCP noise is skipped by design, as Wireshark display filters would
        except PacketError:
            continue
        reassembler.add_segment(segment)
        key = "%s:%d->%s:%d" % segment.flow_key
        frame_counts[key] = frame_counts.get(key, 0) + 1
    result.packet_count = packet_count

    flows = reassembler.flows()
    result.flow_count = len(flows)
    for flow in flows:
        flow_id = str(flow.flow)
        if not flow.data:
            continue
        if not looks_like_tls(flow.data):
            # Plaintext HTTP straight off the wire (rare, port 80).
            for request in parse_request_stream(
                flow.data, scheme="http", timestamp=flow.first_timestamp
            ):
                result.requests.append(DecryptedRequest(request=request, flow=flow_id))
            continue
        try:
            hello, records = unwrap_hello(flow.data)
        except TlsError:
            result.undecryptable_flows += 1
            continue
        if hello is None:
            result.undecryptable_flows += 1
            continue
        session = keylog.lookup(hello.client_random)
        if session is None:
            result.undecryptable_flows += 1
            result.opaque.append(
                OpaqueContact(
                    host=hello.sni,
                    first_timestamp=flow.first_timestamp,
                    frame_count=frame_counts.get(flow_id, 0),
                )
            )
            continue
        try:
            plaintext = decrypt_stream(records, session)
        except TlsError:
            result.undecryptable_flows += 1
            continue
        for request in parse_request_stream(
            plaintext, scheme="https", timestamp=flow.first_timestamp
        ):
            result.requests.append(DecryptedRequest(request=request, flow=flow_id))
    return result
