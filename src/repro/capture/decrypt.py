"""Keylog-based PCAP decryption — the ``editcap`` + Wireshark stand-in.

The study embedded TLS keys into the PCAP with ``editcap
--inject-secrets`` and let Wireshark produce decrypted traffic (§3.2).
This module does the equivalent: reassemble TCP flows from the PCAP,
look each flow's client random up in the key log, decrypt what it can,
and parse the plaintext into HTTP requests.  Flows whose secret is
missing (certificate-pinned) surface as *opaque contacts*: destination
(from the SNI) and frame count only — the paper keeps encrypted
traffic in its packet/domain accounting (§3.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capture.pcapdroid import MobileArtifact
from repro.net.http import HttpRequest, parse_request_stream
from repro.net.packet import Frame, PacketError
from repro.net.pcap import PcapFile
from repro.net.tcp import TcpReassembler
from repro.net.tls import KeyLog, TlsError, decrypt_stream, looks_like_tls, unwrap_hello


@dataclass(frozen=True)
class OpaqueContact:
    """A flow we could not decrypt: destination knowledge only."""

    host: str
    first_timestamp: float
    frame_count: int


@dataclass
class DecryptedRequest:
    """One recovered outgoing request with its flow identity."""

    request: HttpRequest
    flow: str  # canonical flow id string


@dataclass
class MobileDecryption:
    """Everything recoverable from one mobile artifact."""

    requests: list[DecryptedRequest] = field(default_factory=list)
    opaque: list[OpaqueContact] = field(default_factory=list)
    packet_count: int = 0
    flow_count: int = 0
    undecryptable_flows: int = 0


def decrypt_mobile_artifact(
    pcap: PcapFile | bytes, keylog: KeyLog | str
) -> MobileDecryption:
    """Recover plaintext requests from a PCAP + key-log pair."""
    if isinstance(pcap, (bytes, bytearray)):
        pcap = PcapFile.from_bytes(bytes(pcap))
    if isinstance(keylog, str):
        keylog = KeyLog.from_text(keylog)

    result = MobileDecryption(packet_count=len(pcap))
    reassembler = TcpReassembler()
    frame_counts: dict[str, int] = {}
    for packet in pcap.packets:
        try:
            frame = Frame.from_bytes(packet.data, timestamp=packet.timestamp)
        except PacketError:
            continue  # non-TCP noise is skipped, as Wireshark filters would
        reassembler.add_frame(frame)
        key = "%s:%d->%s:%d" % frame.flow_key
        frame_counts[key] = frame_counts.get(key, 0) + 1

    flows = reassembler.flows()
    result.flow_count = len(flows)
    for flow in flows:
        flow_id = str(flow.flow)
        if not flow.data:
            continue
        if not looks_like_tls(flow.data):
            # Plaintext HTTP straight off the wire (rare, port 80).
            for request in parse_request_stream(
                flow.data, scheme="http", timestamp=flow.first_timestamp
            ):
                result.requests.append(DecryptedRequest(request=request, flow=flow_id))
            continue
        try:
            hello, records = unwrap_hello(flow.data)
        except TlsError:
            result.undecryptable_flows += 1
            continue
        if hello is None:
            result.undecryptable_flows += 1
            continue
        session = keylog.lookup(hello.client_random)
        if session is None:
            result.undecryptable_flows += 1
            result.opaque.append(
                OpaqueContact(
                    host=hello.sni,
                    first_timestamp=flow.first_timestamp,
                    frame_count=frame_counts.get(flow_id, 0),
                )
            )
            continue
        try:
            plaintext = decrypt_stream(records, session)
        except TlsError:
            result.undecryptable_flows += 1
            continue
        for request in parse_request_stream(
            plaintext, scheme="https", timestamp=flow.first_timestamp
        ):
            result.requests.append(DecryptedRequest(request=request, flow=flow_id))
    return result
