"""Common capture types."""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import AgeGroup, Platform, TraceColumn, TraceKind


@dataclass(frozen=True)
class TraceMeta:
    """Identity of one captured trace unit."""

    service: str
    platform: Platform
    kind: TraceKind
    age: AgeGroup | None

    @property
    def column(self) -> TraceColumn:
        return TraceColumn.for_trace(self.kind, self.age)

    @property
    def name(self) -> str:
        age = self.age.value if self.age else "none"
        return f"{self.service}-{self.platform.value}-{self.kind.value}-{age}"


@dataclass
class CaptureArtifact:
    """Base class: every capture yields a trace identity plus bytes."""

    meta: TraceMeta
