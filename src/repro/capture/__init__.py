"""Capture tooling simulations (paper §3.1.1–§3.1.3).

Turns generated :class:`~repro.services.generator.RawTrace` objects
into the artifacts the real study collected:

* :mod:`repro.capture.pcapdroid` — mobile: a binary PCAP plus an NSS
  TLS key-log file; certificate-pinned flows are present but their
  secrets never reach the log (Frida bypass failure);
* :mod:`repro.capture.devtools` — website: a Chrome-DevTools-shaped
  HAR export;
* :mod:`repro.capture.proxyman` — desktop: a Proxyman-shaped HAR
  export (MITM proxy, so pinning does not apply);
* :mod:`repro.capture.frida` — the pinning-bypass policy deciding
  which mobile flows are decryptable;
* :mod:`repro.capture.decrypt` — the ``editcap``/Wireshark stand-in
  that merges a key log back into a PCAP's TCP payload streams.

The downstream pipeline consumes *only* these artifacts.
"""

from repro.capture.base import CaptureArtifact, TraceMeta
from repro.capture.devtools import DevToolsCapture
from repro.capture.frida import FridaPolicy
from repro.capture.pcapdroid import MobileArtifact, PcapdroidCapture
from repro.capture.proxyman import ProxymanCapture
from repro.capture.decrypt import DecryptedRequest, decrypt_mobile_artifact

__all__ = [
    "CaptureArtifact",
    "TraceMeta",
    "DevToolsCapture",
    "FridaPolicy",
    "MobileArtifact",
    "PcapdroidCapture",
    "ProxymanCapture",
    "DecryptedRequest",
    "decrypt_mobile_artifact",
]
