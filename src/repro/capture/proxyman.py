"""Proxyman desktop capture simulation (paper §3.1.3).

Roblox's and Minecraft's desktop apps were captured through Proxyman,
a MITM proxy with SSL proxying, and exported to HAR like the websites.
Because the proxy terminates TLS itself, certificate pinning does not
hide traffic here — pinned flows are captured in the clear (apps that
hard-fail under MITM are modelled as absent requests upstream in the
generator, not here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capture.devtools import DevToolsCapture, HarArtifact
from repro.services.generator import RawTrace


@dataclass
class ProxymanCapture(DevToolsCapture):
    """Same HAR pipeline as DevTools, Proxyman branding and desktop
    semantics."""

    creator_name: str = "Proxyman"
    creator_version: str = "4.7.0"

    def capture(self, trace: RawTrace) -> HarArtifact:
        artifact = super().capture(trace)
        artifact.har.comment = f"proxyman-ssl-proxying:{artifact.meta.name}"
        return artifact
