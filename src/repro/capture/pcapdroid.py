"""PCAPdroid capture simulation (paper §3.1.1).

The study ran PCAPdroid on a rooted Pixel 6: it captures each app's
traffic through a local VPN, writes a PCAP, and logs TLS secrets to an
NSS key-log file for later Wireshark decryption.  This module performs
the same transformation on generated traces:

* each connection becomes one TCP flow from the VPN client address,
  carrying a TLS-encrypted byte stream of its pipelined HTTP requests;
* decryptable connections get their secret recorded in the key log;
  pinned connections do not (their plaintext is unrecoverable);
* all frames are serialized into a genuine binary PCAP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capture.base import CaptureArtifact, TraceMeta
from repro.net.pcap import PcapFile, PcapPacket
from repro.net.tcp import FlowId, segment_request
from repro.net.tls import KeyLog, TlsSession, encrypt_stream, wrap_with_hello
from repro.services.generator import RawTrace, ip_for

VPN_CLIENT_IP = "10.215.173.1"  # PCAPdroid's VPN-interface address
_BASE_CLIENT_PORT = 40_000


@dataclass
class MobileArtifact(CaptureArtifact):
    """What PCAPdroid leaves on device storage after a trace."""

    pcap: PcapFile = field(default_factory=PcapFile)
    keylog: KeyLog = field(default_factory=KeyLog)

    @property
    def packet_count(self) -> int:
        return len(self.pcap)

    def pcap_bytes(self) -> bytes:
        return self.pcap.to_bytes()

    def keylog_text(self) -> str:
        return self.keylog.to_text()


@dataclass
class PcapdroidCapture:
    """Capture engine: :class:`RawTrace` → :class:`MobileArtifact`."""

    mss: int = 1400

    def capture(self, trace: RawTrace) -> MobileArtifact:
        meta = TraceMeta(
            service=trace.service,
            platform=trace.platform,
            kind=trace.kind,
            age=trace.age,
        )
        artifact = MobileArtifact(meta=meta)

        # Group requests by connection, preserving request order.
        connections: dict[str, list] = {}
        for traced in trace.requests:
            connections.setdefault(traced.connection, []).append(traced)

        frames: list = []
        for index, (connection_id, traced_requests) in enumerate(connections.items()):
            host = traced_requests[0].request.url.host
            payload = b"".join(t.request.to_bytes() for t in traced_requests)
            session = TlsSession.derive(
                f"{meta.name}|{connection_id}".encode("utf-8")
            )
            stream = wrap_with_hello(
                encrypt_stream(payload, session), session, sni=host
            )
            pinned = any(t.pinned for t in traced_requests)
            if not pinned:
                artifact.keylog.record(session)
            flow = FlowId(
                client_ip=VPN_CLIENT_IP,
                client_port=_BASE_CLIENT_PORT + index,
                server_ip=ip_for(host),
                server_port=443,
            )
            frames.extend(
                segment_request(
                    stream,
                    flow,
                    timestamp=traced_requests[0].request.timestamp,
                    mss=self.mss,
                )
            )

        frames.sort(key=lambda frame: frame.timestamp)
        for frame in frames:
            artifact.pcap.append(
                PcapPacket(timestamp=frame.timestamp, data=frame.to_bytes())
            )
        return artifact
