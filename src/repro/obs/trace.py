"""Lightweight span tracing: where the audit's wall time actually goes.

A span is one named region of work — ``with recorder.span("decode"):``
— measured with a monotonic clock and recorded as a structured event.
The recorder accumulates per-name totals (the view the stage profiler
exposes) and optionally retains every event for a JSONL sidecar, so
profile documents are now a *projection* of spans rather than a
separate timing system.

Determinism: the clock seam is injectable and defaults to
:func:`time.perf_counter`, which measures durations without ever
reading the date — the sanctioned monotonic source under the D-NOW
lint rule.  Span *durations* are inherently run-dependent; they only
ever land in sidecars (profiles, span logs, metrics), never in audit
output.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping

from repro.fsutil import atomic_write_text
from repro.obs.metrics import REGISTRY, MetricsRegistry

SPAN_SCHEMA_VERSION = 1


@dataclass(slots=True)
class SpanEvent:
    """One closed span: name, offsets from recorder start, attributes."""

    name: str
    start_s: float
    duration_s: float
    attrs: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        event: dict[str, object] = {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
        }
        if self.attrs:
            event["attrs"] = {
                key: self.attrs[key] for key in sorted(self.attrs)
            }
        return event


class SpanRecorder:
    """Accumulates spans: totals always, full events on request.

    ``retain_events=False`` (the default for the hot path) keeps only
    the per-name duration totals and counts — the stage profiler's
    view.  ``retain_events=True`` keeps every :class:`SpanEvent` for
    ``--spans-out`` JSONL sidecars.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        retain_events: bool = False,
        metrics: MetricsRegistry | None = None,
        sink: "SpanRecorder | None" = None,
    ) -> None:
        self._clock = clock
        self._origin = clock()
        self._retain = retain_events
        self._metrics = REGISTRY if metrics is None else metrics
        # An optional event sink: every closed span is ALSO appended
        # (events only — totals and metrics stay local, so nothing is
        # double-counted) to the sink's event list, with offsets
        # rebased to the sink's origin.  This is how several scoped
        # recorders (the engine's orchestration timer, the unit-store
        # timer) feed one --spans-out stream.
        self._sink = sink if sink is not None and sink._retain else None
        self.events: list[SpanEvent] = []
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.record(name, self._clock() - start, start=start, **attrs)

    def record(
        self,
        name: str,
        duration_s: float,
        start: float | None = None,
        **attrs: object,
    ) -> None:
        """Close a span by hand (merges and replays use this)."""
        self.totals[name] = self.totals.get(name, 0.0) + duration_s
        self.counts[name] = self.counts.get(name, 0) + 1
        self._metrics.counter("repro_spans_total").labels(name).inc()
        self._metrics.counter("repro_span_seconds_total").labels(name).inc(
            max(duration_s, 0.0)
        )
        if self._retain or self._sink is not None:
            if start is None:
                # Manual record() without a start reading: place the
                # span as ending now (perf_counter is process-wide, so
                # the rebased sink offset stays meaningful).
                start = self._clock() - duration_s
            if self._retain:
                self.events.append(
                    SpanEvent(
                        name=name,
                        start_s=(start - self._origin),
                        duration_s=duration_s,
                        attrs=dict(attrs),
                    )
                )
            if self._sink is not None:
                self._sink.events.append(
                    SpanEvent(
                        name=name,
                        start_s=(start - self._sink._origin),
                        duration_s=duration_s,
                        attrs=dict(attrs),
                    )
                )

    def merge(self, other: Mapping[str, float]) -> None:
        """Fold a plain name→seconds table (a shard's) into totals.

        Merging does NOT re-emit span metrics: a shard's stage table
        was already counted where the spans actually closed (in the
        worker, whose registry ships back separately), so emitting
        here would double-count every merged stage.
        """
        for name, seconds in other.items():
            self.totals[name] = self.totals.get(name, 0.0) + seconds
            self.counts[name] = self.counts.get(name, 0) + 1

    def get(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        """Totals, rounded and sorted — stable JSON output."""
        return {
            name: round(seconds, 6)
            for name, seconds in sorted(self.totals.items())
        }

    def write_jsonl(self, path: Path | str) -> Path:
        """Write retained events as one JSON document per line.

        The first line is a schema header so a reader can reject
        foreign files; events follow in close order.
        """
        lines = [
            json.dumps(
                {"version": SPAN_SCHEMA_VERSION, "events": len(self.events)},
                sort_keys=True,
            )
        ]
        lines.extend(
            json.dumps(event.as_dict(), sort_keys=True)
            for event in self.events
        )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        return atomic_write_text(path, "\n".join(lines) + "\n")


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Module-level convenience over a shared recorder.

    Totals land in the default metrics registry
    (``repro_spans_total`` / ``repro_span_seconds_total``); callers
    that need a JSONL sidecar construct their own
    :class:`SpanRecorder` with ``retain_events=True``.
    """
    with _DEFAULT.span(name, **attrs):
        yield


_DEFAULT = SpanRecorder()
