"""``repro.obs`` — the unified telemetry subsystem.

Three pieces, one contract:

* :mod:`repro.obs.metrics` — a process-local registry of cataloged
  counters/gauges/histograms with Prometheus text rendering, JSON
  snapshots, and a deterministic cross-process merge.
* :mod:`repro.obs.trace` — span tracing (``span("stage")`` context
  managers over an injectable monotonic clock) that the stage
  profiler is now a view over.
* :mod:`repro.obs.http` — a read-only ``/metrics`` + ``/stats``
  endpoint for live sessions.

The contract: telemetry is *observational only*.  Audit and report
outputs are byte-identical with telemetry surfaced or not, because
instrumentation always runs (it is cheap) and the flags only control
where the numbers go — a file, a port, or nowhere.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fsutil import atomic_write_text
from repro.obs.catalog import CATALOG, MetricSpec, spec_for
from repro.obs.http import MetricsServer
from repro.obs.metrics import (
    CONTENT_TYPE,
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import SpanEvent, SpanRecorder, span

__all__ = [
    "CATALOG",
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "MetricSpec",
    "MetricsRegistry",
    "MetricsServer",
    "SpanEvent",
    "SpanRecorder",
    "merge_snapshots",
    "span",
    "spec_for",
    "write_metrics",
]


def write_metrics(
    path: Path | str, registry: MetricsRegistry | None = None
) -> Path:
    """Write the registry to ``path`` — format chosen by extension.

    ``.prom``/``.txt`` get Prometheus text exposition format; anything
    else gets the JSON snapshot.  Both writes are atomic, like every
    other run artifact.
    """
    registry = REGISTRY if registry is None else registry
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix in (".prom", ".txt"):
        return atomic_write_text(path, registry.render_prometheus())
    document = registry.snapshot()
    return atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
