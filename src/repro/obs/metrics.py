"""Process-local metrics registry with a lock-free fast path.

Counters, gauges, and histograms with label sets; every metric must
be declared in :mod:`repro.obs.catalog` first.  The hot path — one
``child.inc(n)`` per event — is a plain attribute add with no lock:
under CPython's GIL a float ``+=`` on an instrumented counter never
tears, and the pipeline's executors either share one registry in one
process (sequential/thread) or keep fully separate registries that
merge deterministically afterwards (process pool, via
:func:`merge_snapshots`).  Locks guard only child *creation*, which
happens once per label set.

Telemetry is observational by construction: nothing in this module
feeds back into audit results, and every rendering (Prometheus text,
JSON snapshot) iterates in sorted order so two registries holding the
same values always serialize to the same bytes.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping, Sequence

from repro.obs.catalog import CATALOG, MetricSpec, spec_for

SNAPSHOT_VERSION = 1

#: Default histogram bucket upper bounds (seconds): spans store
#: round-trips from sub-millisecond page-cache reads out to
#: multi-second degraded retries.
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0)

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Counter:
    """Monotonically increasing count. ``inc`` is the lock-free path."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (or be computed on scrape)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def max(self, value: float) -> None:
        """High-water update: keep the larger of current and ``value``."""
        if value > self.value:
            self.value = value


class Histogram:
    """Cumulative-bucket histogram over fixed upper bounds."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
        self.sum += value
        self.count += 1


class Family:
    """All children of one cataloged metric, keyed by label values."""

    def __init__(self, spec: MetricSpec, registry: "MetricsRegistry") -> None:
        self.spec = spec
        self._registry = registry
        self._children: dict[tuple[str, ...], object] = {}
        # A label-less family gets its single child eagerly so the
        # metric renders (at zero) from the moment it is registered —
        # scrapes and goldens never depend on whether an event fired.
        if not spec.labels:
            self._children[()] = self._make()

    def _make(self) -> object:
        if self.spec.type == "counter":
            return Counter()
        if self.spec.type == "gauge":
            return Gauge()
        return Histogram()

    def labels(self, *values: str) -> object:
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.spec.labels):
            raise ValueError(
                f"metric {self.spec.name!r} takes labels "
                f"{self.spec.labels}, got {values!r}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._registry._lock:
                child = self._children.setdefault(key, self._make())
        return child

    # Label-less conveniences: module-level call sites hold the family
    # and call .inc()/.set()/.observe() directly.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self.labels().set(value)  # type: ignore[union-attr]

    def max(self, value: float) -> None:
        self.labels().max(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self.labels().observe(value)  # type: ignore[union-attr]

    def items(self) -> list[tuple[tuple[str, ...], object]]:
        """Children in sorted label order — the deterministic view."""
        return sorted(self._children.items())


class MetricsRegistry:
    """One process's metrics: families, callbacks, and serializers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, Family] = {}
        self._callbacks: dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def family(self, name: str) -> Family:
        """The family for a cataloged metric (created on first use)."""
        family = self._families.get(name)
        if family is None:
            spec = spec_for(name)
            with self._lock:
                family = self._families.setdefault(name, Family(spec, self))
        return family

    def counter(self, name: str) -> Family:
        return self._typed(name, "counter")

    def gauge(self, name: str) -> Family:
        return self._typed(name, "gauge")

    def histogram(self, name: str) -> Family:
        return self._typed(name, "histogram")

    def _typed(self, name: str, metric_type: str) -> Family:
        family = self.family(name)
        if family.spec.type != metric_type:
            raise TypeError(
                f"metric {name!r} is a {family.spec.type}, not a "
                f"{metric_type}"
            )
        return family

    def gauge_callback(self, name: str, fn: Callable[[], float]) -> None:
        """Compute a label-less gauge on scrape instead of on event.

        Live stream state (flows resident, bytes buffered) changes on
        every packet; sampling it when someone actually looks is both
        cheaper and more truthful than eagerly mirroring it.
        """
        family = self.gauge(name)
        if family.spec.labels:
            raise ValueError(
                f"gauge_callback only supports label-less gauges, "
                f"{name!r} has labels {family.spec.labels}"
            )
        with self._lock:
            self._callbacks[name] = fn

    def clear_callback(self, name: str) -> None:
        with self._lock:
            self._callbacks.pop(name, None)

    def _run_callbacks(self) -> None:
        for name, fn in sorted(self._callbacks.items()):
            try:
                self.gauge(name).set(float(fn()))
            # repro-lint: disable=X-SWALLOW — a scrape racing session teardown reads dead state; the gauge keeps its last good value
            except (ValueError, TypeError, AttributeError):
                continue

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able, deterministic dump of every sample."""
        self._run_callbacks()
        metrics: dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            spec = family.spec
            samples = []
            for key, child in family.items():
                labels = {
                    label: value
                    for label, value in zip(spec.labels, key)
                }
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": [
                                [bound, count]
                                for bound, count in zip(
                                    child.buckets, child.counts
                                )
                            ],
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics[name] = {
                "type": spec.type,
                "help": spec.help,
                "samples": samples,
            }
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self._run_callbacks()
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            spec = family.spec
            lines.append(f"# HELP {name} {spec.help}")
            lines.append(f"# TYPE {name} {spec.type}")
            for key, child in family.items():
                if isinstance(child, Histogram):
                    # ``counts`` is already cumulative: observe()
                    # increments every bucket whose bound covers the
                    # value, which is exactly Prometheus ``le`` form.
                    for bound, count in zip(child.buckets, child.counts):
                        bucket_labels = _label_str(
                            spec.labels + ("le",),
                            key + (_format_value(bound),),
                        )
                        lines.append(f"{name}_bucket{bucket_labels} {count}")
                    inf_labels = _label_str(
                        spec.labels + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{inf_labels} {child.count}")
                    label_str = _label_str(spec.labels, key)
                    lines.append(
                        f"{name}_sum{label_str} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(f"{name}_count{label_str} {child.count}")
                else:
                    label_str = _label_str(spec.labels, key)
                    lines.append(
                        f"{name}{label_str} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Merge / reset
    # ------------------------------------------------------------------

    def absorb(self, snapshot: Mapping) -> None:
        """Fold one worker snapshot into this registry.

        Counters and histograms add; gauges keep the maximum (their
        one cross-process use is high-water style state).  Callers
        absorb worker snapshots in canonical task order, which pins
        the float addition order and keeps merged metrics
        deterministic for a given run plan.
        """
        if snapshot.get("version") != SNAPSHOT_VERSION:
            raise ValueError(
                f"cannot absorb metrics snapshot version "
                f"{snapshot.get('version')!r}"
            )
        for name, entry in sorted(snapshot.get("metrics", {}).items()):
            if name not in CATALOG:
                raise KeyError(f"snapshot carries uncataloged metric {name!r}")
            family = self.family(name)
            spec = family.spec
            for sample in entry.get("samples", ()):
                labels = sample.get("labels", {})
                values = tuple(str(labels.get(label, "")) for label in spec.labels)
                child = family.labels(*values)
                if spec.type == "histogram":
                    assert isinstance(child, Histogram)
                    for index, (bound, count) in enumerate(
                        sample.get("buckets", ())
                    ):
                        if (
                            index < len(child.buckets)
                            and child.buckets[index] == bound
                        ):
                            child.counts[index] += count
                    child.sum += sample.get("sum", 0.0)
                    child.count += sample.get("count", 0)
                elif spec.type == "counter":
                    assert isinstance(child, Counter)
                    child.value += sample.get("value", 0.0)
                else:
                    assert isinstance(child, Gauge)
                    child.max(sample.get("value", 0.0))

    def reset(self) -> None:
        """Zero every sample, keeping families and callbacks.

        Process-pool workers reset before each task so the task-end
        snapshot *is* the task's delta; tests reset between cases.
        """
        with self._lock:
            for family in self._families.values():
                for _, child in family.items():
                    if isinstance(child, Histogram):
                        child.counts = [0] * len(child.buckets)
                        child.sum = 0.0
                        child.count = 0
                    else:
                        child.value = 0.0  # type: ignore[union-attr]


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Deterministically merge snapshots into one.

    Pure function used by tests and offline tooling: the same
    multiset of snapshots merges to the same document regardless of
    input order for integer-valued samples, and in the engine the
    absorb order is pinned to canonical task order so float sums are
    stable too.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.absorb(snapshot)
    return registry.snapshot()


#: The process-wide default registry every instrumentation site uses.
REGISTRY = MetricsRegistry()
