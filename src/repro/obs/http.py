"""Live metrics endpoint: ``/metrics`` (Prometheus text) + ``/stats``.

A tiny stdlib HTTP server on a daemon thread, bound to loopback by
default, serving whatever registry (and optional stats callable) the
owning session hands it.  This is the scrape surface ROADMAP item 3's
multi-session daemon will sit behind; for now ``repro stream
--metrics-port N`` owns one for the life of the session.

The server is strictly read-only and strictly observational: handlers
never touch session state beyond calling the provided callables, so a
scrape can never perturb audit output.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from repro.obs.metrics import CONTENT_TYPE, REGISTRY, MetricsRegistry


class MetricsServer:
    """Serve one registry (and optional live stats) over HTTP."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        port: int = 0,
        host: str = "127.0.0.1",
        stats_fn: Callable[[], Mapping] | None = None,
    ) -> None:
        self.registry = REGISTRY if registry is None else registry
        self.stats_fn = stats_fn
        self._httpd = ThreadingHTTPServer(
            (host, port), self._handler_class()
        )
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return self._httpd.server_address[1]

    def _handler_class(self) -> type[BaseHTTPRequestHandler]:
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = server.registry.render_prometheus().encode("utf-8")
                    self._reply(200, CONTENT_TYPE, body)
                elif path == "/stats":
                    stats = (
                        dict(server.stats_fn())
                        if server.stats_fn is not None
                        else {}
                    )
                    document = {
                        "stats": stats,
                        "metrics": server.registry.snapshot(),
                    }
                    body = (
                        json.dumps(document, sort_keys=True) + "\n"
                    ).encode("utf-8")
                    self._reply(200, "application/json", body)
                else:
                    self._reply(
                        404, "text/plain; charset=utf-8", b"not found\n"
                    )

            def _reply(
                self, status: int, content_type: str, body: bytes
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                """Scrapes are routine; stay quiet on stderr."""

        return Handler

    def start(self) -> int:
        """Serve on a daemon thread; returns the bound port."""
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
