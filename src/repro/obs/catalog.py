"""The metric-name catalog: the single source of truth for telemetry.

Every metric the pipeline emits is declared here, once, with its
type, help string, and label names.  The registry refuses to create a
metric that is not cataloged, and the ``S-METRIC-DOC`` lint rule
cross-checks that every cataloged name appears (as an inline-code
token) in ``docs/observability.md`` — the same code/docs-sync
contract the profile stages and BENCH schema already live under.

Naming follows Prometheus conventions: ``repro_`` prefix, snake_case,
``_total`` suffix on counters, ``_bytes``/``_seconds`` units spelled
out.  Label sets are deliberately tiny (executor kind, stage name,
fault kind/profile) so cardinality stays bounded by closed sets the
code already defines.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The metric types the registry implements (Prometheus core set
#: minus Summary, which Histogram subsumes for our purposes).
METRIC_TYPES = ("counter", "gauge", "histogram")


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """One cataloged metric: its name, type, help text, and labels."""

    name: str
    type: str
    help: str
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.type not in METRIC_TYPES:
            raise ValueError(
                f"metric {self.name!r}: unknown type {self.type!r} "
                f"(expected one of {METRIC_TYPES})"
            )


_SPECS = (
    # ------------------------------------------------------------------
    # Decode layer (net/): bytes and records through each protocol hop.
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_pcap_packets_total",
        "counter",
        "Packets parsed from pcap byte streams.",
    ),
    MetricSpec(
        "repro_pcap_bytes_total",
        "counter",
        "Capture bytes parsed from pcap byte streams.",
    ),
    MetricSpec(
        "repro_tcp_segments_total",
        "counter",
        "TCP segments fed to stream reassembly.",
    ),
    MetricSpec(
        "repro_tcp_payload_bytes_total",
        "counter",
        "TCP payload bytes accepted by stream reassembly.",
    ),
    MetricSpec(
        "repro_tls_records_total",
        "counter",
        "TLS records decrypted.",
    ),
    MetricSpec(
        "repro_tls_plaintext_bytes_total",
        "counter",
        "Plaintext bytes recovered from TLS records.",
    ),
    MetricSpec(
        "repro_http_requests_total",
        "counter",
        "HTTP requests recovered from decrypted streams.",
    ),
    # ------------------------------------------------------------------
    # Engine (pipeline/engine.py): shard dispatch, incremental reuse,
    # and the fault-recovery machinery from PR 9.
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_engine_runs_total",
        "counter",
        "Audit engine runs started, by executor kind.",
        labels=("executor",),
    ),
    MetricSpec(
        "repro_engine_tasks_dispatched_total",
        "counter",
        "Shard tasks dispatched to the executor.",
    ),
    MetricSpec(
        "repro_engine_units_cached_total",
        "counter",
        "Trace units reused from cached unit results (incremental hits).",
    ),
    MetricSpec(
        "repro_engine_units_dirty_total",
        "counter",
        "Trace units recomputed because content digests changed.",
    ),
    MetricSpec(
        "repro_engine_queue_depth",
        "gauge",
        "Shard tasks submitted but not yet completed (high water per run).",
    ),
    MetricSpec(
        "repro_engine_shard_retries_total",
        "counter",
        "Shard attempts retried after a worker crash.",
    ),
    MetricSpec(
        "repro_engine_shard_crashes_total",
        "counter",
        "Pool generations broken by a worker crash (process executor).",
    ),
    MetricSpec(
        "repro_engine_bisection_probes_total",
        "counter",
        "Single-unit probes run while isolating poison units.",
    ),
    MetricSpec(
        "repro_engine_degraded_units_total",
        "counter",
        "Trace units that completed degraded instead of failing the run.",
    ),
    # ------------------------------------------------------------------
    # Span tracing: every span lands here as well as in the JSONL sink.
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_spans_total",
        "counter",
        "Spans closed, by span (stage) name.",
        labels=("name",),
    ),
    MetricSpec(
        "repro_span_seconds_total",
        "counter",
        "Total wall time spent inside spans, by span (stage) name.",
        labels=("name",),
    ),
    # ------------------------------------------------------------------
    # Classification store (datatypes/): persistent + in-memory caches.
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_store_hits_total",
        "counter",
        "Persistent classification store key hits.",
    ),
    MetricSpec(
        "repro_store_misses_total",
        "counter",
        "Persistent classification store key misses.",
    ),
    MetricSpec(
        "repro_store_unit_hits_total",
        "counter",
        "Unit-result store hits (whole trace units reused).",
    ),
    MetricSpec(
        "repro_store_get_seconds",
        "histogram",
        "Latency of classification store batch reads.",
    ),
    MetricSpec(
        "repro_store_put_seconds",
        "histogram",
        "Latency of classification store batch writes.",
    ),
    MetricSpec(
        "repro_store_disabled",
        "gauge",
        "1 when the store degraded itself off after an I/O failure.",
    ),
    MetricSpec(
        "repro_classifier_cache_hits_total",
        "counter",
        "In-memory classifier cache hits.",
    ),
    MetricSpec(
        "repro_classifier_cache_misses_total",
        "counter",
        "In-memory classifier cache misses.",
    ),
    # ------------------------------------------------------------------
    # Stream sessions (stream/): the live view ROADMAP 3 asks for.
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_stream_traces_total",
        "counter",
        "Packet traces consumed by stream sessions.",
    ),
    MetricSpec(
        "repro_stream_packets_total",
        "counter",
        "Packets consumed by stream sessions.",
    ),
    MetricSpec(
        "repro_stream_flows_live",
        "gauge",
        "Flow pipelines currently resident in the incremental decoder.",
    ),
    MetricSpec(
        "repro_stream_buffered_bytes",
        "gauge",
        "Reassembly bytes currently buffered across live flows.",
    ),
    MetricSpec(
        "repro_stream_high_water_bytes",
        "gauge",
        "Largest buffered-byte footprint seen by any decoder this session.",
    ),
    MetricSpec(
        "repro_stream_evictions_total",
        "counter",
        "Flow pipelines evicted by the idle/byte-budget policy.",
    ),
    MetricSpec(
        "repro_stream_snapshots_total",
        "counter",
        "Periodic snapshots taken by stream sessions.",
    ),
    # ------------------------------------------------------------------
    # Fault injection (faults/): what the chaos profiles actually did.
    # ------------------------------------------------------------------
    MetricSpec(
        "repro_faults_fired_total",
        "counter",
        "Injected faults fired, by fault kind and plan profile.",
        labels=("kind", "profile"),
    ),
)

#: name → spec, in declaration order (dict preserves insertion order;
#: rendering sorts by name anyway).
CATALOG: dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}

if len(CATALOG) != len(_SPECS):  # pragma: no cover - guarded by tests
    raise RuntimeError("duplicate metric name in the catalog")


def spec_for(name: str) -> MetricSpec:
    """Look up a cataloged metric, or fail loudly.

    The catalog is the contract: an uncataloged metric would be
    invisible to ``docs/observability.md`` and to the ``S-METRIC-DOC``
    lint rule, so creating one is an error, not a convenience.
    """
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"metric {name!r} is not in repro.obs.catalog.CATALOG — "
            "declare it there (and document it in docs/observability.md) "
            "before registering it"
        ) from None
