"""Interaction scripts — what the "user" does in each trace.

The paper collected traces by manually exhausting every feature of each
service (§3.1): account creation flows, then logged-in usage, then a
shorter logged-out browse.  Sessions model that narrative: an ordered
list of :class:`Interaction` steps with first-party endpoint paths per
service category.  The generator attaches the data-flow payloads to
these steps, so traces read like real product telemetry rather than
random requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import AgeGroup, TraceKind


@dataclass(frozen=True)
class Interaction:
    """One user action and the first-party endpoint it hits."""

    name: str
    path: str
    method: str = "POST"


_COMMON_LAUNCH = (
    Interaction("app_launch", "/api/v1/config", "GET"),
    Interaction("feature_flags", "/api/v1/flags", "GET"),
    Interaction("telemetry_boot", "/api/v1/telemetry/boot"),
)

_SIGNUP = (
    Interaction("age_gate", "/api/v1/signup/age"),
    Interaction("create_account", "/api/v1/signup/create"),
    Interaction("consent", "/api/v1/signup/consent"),
    Interaction("profile_setup", "/api/v1/profile"),
)

_PARENT_CONSENT = (Interaction("parent_email", "/api/v1/signup/parent-consent"),)

_LOGIN = (
    Interaction("login", "/api/v1/auth/login"),
    Interaction("session_refresh", "/api/v1/auth/refresh"),
)

_BY_CATEGORY: dict[str, tuple[Interaction, ...]] = {
    "gaming": (
        Interaction("browse_games", "/api/v1/games/list", "GET"),
        Interaction("join_game", "/api/v1/games/join"),
        Interaction("avatar_update", "/api/v1/avatar"),
        Interaction("chat_send", "/api/v1/chat/send"),
        Interaction("friends_list", "/api/v1/friends", "GET"),
        Interaction("purchase_view", "/api/v1/store/items", "GET"),
        Interaction("match_telemetry", "/api/v1/telemetry/match"),
        Interaction("leaderboard", "/api/v1/leaderboard", "GET"),
    ),
    "social media": (
        Interaction("feed_scroll", "/api/v1/feed", "GET"),
        Interaction("video_watch", "/api/v1/video/play"),
        Interaction("video_like", "/api/v1/video/like"),
        Interaction("comment_post", "/api/v1/comment"),
        Interaction("search", "/api/v1/search", "GET"),
        Interaction("profile_view", "/api/v1/profile/view", "GET"),
        Interaction("watch_telemetry", "/api/v1/telemetry/watch"),
        Interaction("share", "/api/v1/share"),
    ),
    "education": (
        Interaction("lesson_start", "/api/v1/lesson/start"),
        Interaction("lesson_complete", "/api/v1/lesson/complete"),
        Interaction("study_set_view", "/api/v1/sets/view", "GET"),
        Interaction("quiz_answer", "/api/v1/quiz/answer"),
        Interaction("progress_sync", "/api/v1/progress"),
        Interaction("search", "/api/v1/search", "GET"),
        Interaction("streak_check", "/api/v1/streak", "GET"),
        Interaction("achievements", "/api/v1/achievements", "GET"),
    ),
}

_SETTINGS = (
    Interaction("open_settings", "/api/v1/settings", "GET"),
    Interaction("update_settings", "/api/v1/settings"),
    Interaction("notification_prefs", "/api/v1/settings/notifications"),
)

_LOGGED_OUT = (
    Interaction("landing_page", "/", "GET"),
    Interaction("browse_public", "/explore", "GET"),
    Interaction("search_public", "/search", "GET"),
    Interaction("telemetry_anon", "/api/v1/telemetry/anon"),
)


def script_for(
    category: str,
    kind: TraceKind,
    age: AgeGroup | None,
    requires_parent_email: bool,
) -> list[Interaction]:
    """The ordered interaction script for one trace unit.

    Account-creation traces cover launch + the signup funnel (with the
    parental-consent step for children on services that require it)
    plus a short usage burst; logged-in traces cover the full feature
    sweep; logged-out traces are the shorter anonymous browse the paper
    describes.
    """
    usage = _BY_CATEGORY[category]
    if kind is TraceKind.LOGGED_OUT:
        return list(_LOGGED_OUT)
    if kind is TraceKind.ACCOUNT_CREATION:
        signup = list(_SIGNUP)
        if age is AgeGroup.CHILD and requires_parent_email:
            signup[2:2] = list(_PARENT_CONSENT)
        return list(_COMMON_LAUNCH) + signup + list(usage[:3])
    # logged in: exhaust every feature, twice around, plus settings
    return list(_COMMON_LAUNCH) + list(_LOGIN) + list(usage) + list(_SETTINGS) + list(usage)
