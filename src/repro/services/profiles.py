"""Ground-truth behaviour profiles transcribed from the paper.

Each service's profile encodes:

* **the Table 4 grid** — for each level-2 data type category and each
  audit column (child / adolescent / adult / logged-out), on which
  platforms each of the four flow cells (collect 1st, collect 1st ATS,
  share 3rd, share 3rd ATS) was observed;
* **Figure 3 calibration** — how many third-party domains receive
  linkable data per column;
* **Figure 4 calibration** — the size of the largest linkable data
  type set per column;
* **Table 1 calibration** — packet and TCP-flow volume targets and the
  number of distinct domains/eSLDs contacted.

Grid cells are written as compact 4-character strings per column in
cell order ``[collect 1st, collect 1st ATS, share 3rd, share 3rd ATS]``
using ``B`` (both platforms), ``W`` (web only), ``M`` (mobile only),
and ``-`` (not observed), exactly mirroring Table 4's symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.model import (
    ALL_COLUMNS,
    FlowCell,
    Presence,
    TraceColumn,
)
from repro.ontology.nodes import Level2, Level3

_SYMBOL = {
    "B": Presence.BOTH,
    "W": Presence.WEB_ONLY,
    "M": Presence.MOBILE_ONLY,
    "-": Presence.NONE,
}

_CELLS = (
    FlowCell.COLLECT_1ST,
    FlowCell.COLLECT_1ST_ATS,
    FlowCell.SHARE_3RD,
    FlowCell.SHARE_3RD_ATS,
)

_LEVEL2_ROWS = (
    Level2.PERSONAL_IDENTIFIERS,
    Level2.DEVICE_IDENTIFIERS,
    Level2.PERSONAL_CHARACTERISTICS,
    Level2.GEOLOCATION,
    Level2.USER_COMMUNICATIONS,
    Level2.USER_INTERESTS_AND_BEHAVIORS,
)

GridKey = tuple[Level2, TraceColumn, FlowCell]


def _parse_grid(rows: dict[Level2, str]) -> dict[GridKey, Presence]:
    """Expand the compact row strings into a full grid mapping.

    Each row string holds 16 symbols: four audit columns × four cells,
    column order child, adolescent, adult, logged-out.
    """
    grid: dict[GridKey, Presence] = {}
    for level2, text in rows.items():
        symbols = text.replace(" ", "")
        if len(symbols) != 16:
            raise ValueError(f"{level2}: expected 16 symbols, got {len(symbols)}")
        for column_index, column in enumerate(ALL_COLUMNS):
            for cell_index, cell in enumerate(_CELLS):
                symbol = symbols[column_index * 4 + cell_index]
                grid[(level2, column, cell)] = _SYMBOL[symbol]
    return grid


# The level-3 data types each level-2 row contributes, in the canonical
# linkable-set priority order used for Figure 4 (see LINKABLE_PRIORITY).
# Only the paper's 19 observed categories appear (Table 2 stars).
LEVEL3_BY_LEVEL2: dict[Level2, tuple[Level3, ...]] = {
    Level2.PERSONAL_IDENTIFIERS: (
        Level3.ALIASES,
        Level3.NAME,
        Level3.LOGIN_INFORMATION,
        Level3.REASONABLY_LINKABLE_PERSONAL_IDENTIFIERS,
        Level3.CONTACT_INFORMATION,
    ),
    Level2.DEVICE_IDENTIFIERS: (
        Level3.DEVICE_INFORMATION,
        Level3.DEVICE_SOFTWARE_IDENTIFIERS,
        Level3.DEVICE_HARDWARE_IDENTIFIERS,
    ),
    Level2.PERSONAL_CHARACTERISTICS: (
        Level3.LANGUAGE,
        Level3.AGE,
        Level3.GENDER_SEX,
    ),
    Level2.GEOLOCATION: (
        Level3.LOCATION_TIME,
        Level3.COARSE_GEOLOCATION,
    ),
    Level2.USER_COMMUNICATIONS: (Level3.NETWORK_CONNECTION_INFORMATION,),
    Level2.USER_INTERESTS_AND_BEHAVIORS: (
        Level3.SERVICE_INFORMATION,
        Level3.APP_OR_SERVICE_USAGE,
        Level3.PRODUCTS_AND_ADVERTISING,
        Level3.ACCOUNT_SETTINGS,
        Level3.INFERENCES,
    ),
}

# Canonical priority order for composing linkable sets.  The first five
# entries reproduce the paper's "most common linkable set" (§4.2:
# network connection information, language, service information, app or
# service usage, device information); the first thirteen reproduce the
# largest observed set (Quizlet, adult trace).
LINKABLE_PRIORITY: tuple[Level3, ...] = (
    Level3.NETWORK_CONNECTION_INFORMATION,
    Level3.LANGUAGE,
    Level3.SERVICE_INFORMATION,
    Level3.APP_OR_SERVICE_USAGE,
    Level3.DEVICE_INFORMATION,
    Level3.DEVICE_SOFTWARE_IDENTIFIERS,
    Level3.PRODUCTS_AND_ADVERTISING,
    Level3.ACCOUNT_SETTINGS,
    Level3.ALIASES,
    Level3.NAME,
    Level3.LOGIN_INFORMATION,
    Level3.LOCATION_TIME,
    Level3.REASONABLY_LINKABLE_PERSONAL_IDENTIFIERS,
    Level3.COARSE_GEOLOCATION,
    Level3.DEVICE_HARDWARE_IDENTIFIERS,
    Level3.AGE,
    Level3.GENDER_SEX,
    Level3.CONTACT_INFORMATION,
    Level3.INFERENCES,
)


@dataclass(frozen=True)
class VolumeTargets:
    """Table 1 calibration (per service, platforms merged)."""

    domains: int
    eslds: int
    packets: int
    tcp_flows: int


@dataclass(frozen=True)
class ServiceProfile:
    """Everything the generator needs to emit one service's traffic."""

    service: str
    grid: dict[GridKey, Presence]
    linkable_third_parties: dict[TraceColumn, int]  # Figure 3
    largest_linkable_set: dict[TraceColumn, int]  # Figure 4
    volume: VolumeTargets  # Table 1
    partner_orgs: tuple[str, ...]  # Figure 5 head of the ATS pool

    def presence(self, level2: Level2, column: TraceColumn, cell: FlowCell) -> Presence:
        return self.grid[(level2, column, cell)]

    def shared_level2(self, column: TraceColumn) -> list[Level2]:
        """Level-2 categories shared with any third party in a column."""
        return [
            level2
            for level2 in _LEVEL2_ROWS
            if self.presence(level2, column, FlowCell.SHARE_3RD) is not Presence.NONE
            or self.presence(level2, column, FlowCell.SHARE_3RD_ATS) is not Presence.NONE
        ]

    def linkable_set(self, column: TraceColumn) -> list[Level3]:
        """The level-3 set sent to the column's top linkable partner.

        Composed by walking LINKABLE_PRIORITY, keeping types whose
        level-2 parent is shared with third parties in this column,
        truncated to the Figure 4 target (which may exceed availability
        — e.g. TikTok child — in which case availability wins; the
        deviation is recorded in EXPERIMENTS.md).
        """
        allowed = set(self.shared_level2(column))
        target = self.largest_linkable_set[column]
        chosen: list[Level3] = []
        for level3 in LINKABLE_PRIORITY:
            parent = _LEVEL2_OF[level3]
            if parent in allowed:
                chosen.append(level3)
            if len(chosen) == target:
                break
        return chosen


_LEVEL2_OF: dict[Level3, Level2] = {
    level3: level2
    for level2, members in LEVEL3_BY_LEVEL2.items()
    for level3 in members
}


def _columns(child: int, adolescent: int, adult: int, logged_out: int) -> dict[TraceColumn, int]:
    return {
        TraceColumn.CHILD: child,
        TraceColumn.ADOLESCENT: adolescent,
        TraceColumn.ADULT: adult,
        TraceColumn.LOGGED_OUT: logged_out,
    }


# ---------------------------------------------------------------------
# Table 4 transcription.  Row order within each string:
#   child | adolescent | adult | logged-out, each as [C1, C1A, S3, S3A].
# ---------------------------------------------------------------------

_PROFILES: dict[str, ServiceProfile] = {
    "duolingo": ServiceProfile(
        service="duolingo",
        grid=_parse_grid(
            {
                Level2.PERSONAL_IDENTIFIERS: "B-WB B-WB B-WB B--M",
                Level2.DEVICE_IDENTIFIERS: "B-BB B-BB B-BB B-BB",
                Level2.PERSONAL_CHARACTERISTICS: "B-WB B-WB B-WB B-WB",
                Level2.GEOLOCATION: "B--B B--B B--B B--M",
                Level2.USER_COMMUNICATIONS: "B-BB B-BB B-BB B-BB",
                Level2.USER_INTERESTS_AND_BEHAVIORS: "B-BB B-BB B-BB B-BB",
            }
        ),
        linkable_third_parties=_columns(19, 58, 51, 14),
        largest_linkable_set=_columns(11, 11, 11, 11),
        volume=VolumeTargets(domains=122, eslds=69, packets=60_909, tcp_flows=1_466),
        partner_orgs=(
            "Google LLC",
            "Braze, Inc.",
            "Adjust GmbH",
            "AppsFlyer",
            "Functional Software",
            "Amazon Technologies",
            "Apptimize, Inc.",
            "ProfitWell",
            "OneTrust",
            "Snowplow Analytics",
        ),
    ),
    "minecraft": ServiceProfile(
        service="minecraft",
        grid=_parse_grid(
            {
                Level2.PERSONAL_IDENTIFIERS: "BBM- BBM- BBMM MW--",
                Level2.DEVICE_IDENTIFIERS: "BBBB BBBB BBBB BBWB",
                Level2.PERSONAL_CHARACTERISTICS: "BBBB BBBB BBBB BWWB",
                Level2.GEOLOCATION: "BWWM WWWM BWWM MW-M",
                Level2.USER_COMMUNICATIONS: "BBBB BBBB BBBB BBWB",
                Level2.USER_INTERESTS_AND_BEHAVIORS: "BBWB BBBB BBWB BBWB",
            }
        ),
        linkable_third_parties=_columns(31, 31, 18, 17),
        largest_linkable_set=_columns(9, 10, 11, 8),
        volume=VolumeTargets(domains=136, eslds=56, packets=134_852, tcp_flows=2_004),
        partner_orgs=(
            "Akamai Technologies",
            "Adobe Inc.",
            "Google LLC",
            "Amazon Technologies",
            "Integral Ad Science",
            "Index Exchange",
            "NSONE Inc",
            "Crownpeak Technology",
            "OneTrust",
            "DoubleVerify",
        ),
    ),
    "quizlet": ServiceProfile(
        service="quizlet",
        grid=_parse_grid(
            {
                Level2.PERSONAL_IDENTIFIERS: "B-BW B-BB B-BB W-BB",
                Level2.DEVICE_IDENTIFIERS: "B-BB B-BB B-BB B-BB",
                Level2.PERSONAL_CHARACTERISTICS: "B-BB B-BB B-BB B-BB",
                Level2.GEOLOCATION: "W-BB W-BB W-BB W-BB",
                Level2.USER_COMMUNICATIONS: "B-BB B-BB B-BB B-BB",
                Level2.USER_INTERESTS_AND_BEHAVIORS: "B-BB B-BB B-BB B-BB",
            }
        ),
        linkable_third_parties=_columns(31, 219, 234, 160),
        largest_linkable_set=_columns(10, 12, 13, 12),
        volume=VolumeTargets(domains=532, eslds=257, packets=88_102, tcp_flows=6_158),
        partner_orgs=(
            "Google LLC",
            "PubMatic, Inc.",
            "Amazon Technologies",
            "Adobe Inc.",
            "MediaMath, Inc.",
            "OpenX Technologies",
            "Index Exchange",
            "Magnite, Inc.",
            "TripleLift",
            "Sharethrough, Inc.",
            "Media.net Advertising",
            "Adform A/S",
            "Tapad, Inc.",
            "Exponential Interactive",
            "Ad Lightning, Inc.",
            "Integral Ad Science",
            "Snap Inc.",
            "OneSoon Ltd",
            "ClickTale",
            "Snowplow Analytics",
        ),
    ),
    "roblox": ServiceProfile(
        service="roblox",
        grid=_parse_grid(
            {
                Level2.PERSONAL_IDENTIFIERS: "BBMW BBMW BBMW WW-W",
                Level2.DEVICE_IDENTIFIERS: "BBBB BBBB BBBB BBWW",
                Level2.PERSONAL_CHARACTERISTICS: "BBBB BBBB BBBB BBWW",
                Level2.GEOLOCATION: "W--W W--B W--W ---W",
                Level2.USER_COMMUNICATIONS: "BBBB BBBB BBBB BBWW",
                Level2.USER_INTERESTS_AND_BEHAVIORS: "BBBB BBBB BBBB BWWW",
            }
        ),
        linkable_third_parties=_columns(15, 20, 20, 4),
        largest_linkable_set=_columns(8, 9, 8, 8),
        volume=VolumeTargets(domains=152, eslds=24, packets=103_642, tcp_flows=2_302),
        partner_orgs=(
            "Google LLC",
            "Amazon Technologies",
            "Adobe Inc.",
            "PubMatic, Inc.",
            "Akamai Technologies",
            "NSONE Inc",
            "Functional Software",
            "OneTrust",
            "Index Exchange",
            "AppsFlyer",
        ),
    ),
    "tiktok": ServiceProfile(
        service="tiktok",
        grid=_parse_grid(
            {
                Level2.PERSONAL_IDENTIFIERS: "WW-- WWW- WWWM WW--",
                Level2.DEVICE_IDENTIFIERS: "BBWM BBWM BBWM BWWM",
                Level2.PERSONAL_CHARACTERISTICS: "WWW- WWW- WWWM WWW-",
                Level2.GEOLOCATION: "WW-- WW-- WW-M WW--",
                Level2.USER_COMMUNICATIONS: "BBWM BBWM BBWM BWWM",
                Level2.USER_INTERESTS_AND_BEHAVIORS: "WWW- WWWM WWWM BWW-",
            }
        ),
        linkable_third_parties=_columns(2, 6, 5, 3),
        largest_linkable_set=_columns(5, 7, 10, 5),
        volume=VolumeTargets(domains=80, eslds=14, packets=32_234, tcp_flows=2_412),
        partner_orgs=(
            "Lemon Inc",
            "Apptimize, Inc.",
            "Adjust GmbH",
            "AppsFlyer",
            "Akamai Technologies",
            "Google LLC",
        ),
    ),
    "youtube": ServiceProfile(
        service="youtube",
        grid=_parse_grid(
            {
                Level2.PERSONAL_IDENTIFIERS: "W--- BW-- WW-- W---",
                Level2.DEVICE_IDENTIFIERS: "WW-- BW-- BW-- WW--",
                Level2.PERSONAL_CHARACTERISTICS: "WW-- WW-- WW-- WW--",
                Level2.GEOLOCATION: "W--- BW-- WW-- WW--",
                Level2.USER_COMMUNICATIONS: "WW-- BW-- BW-- WW--",
                Level2.USER_INTERESTS_AND_BEHAVIORS: "WW-- BW-- BW-- WW--",
            }
        ),
        linkable_third_parties=_columns(0, 0, 0, 0),
        largest_linkable_set=_columns(0, 0, 0, 0),
        volume=VolumeTargets(domains=76, eslds=15, packets=20_774, tcp_flows=226),
        partner_orgs=(),
    ),
}


def profile_for(service: str) -> ServiceProfile:
    """The ground-truth profile for one of the six services."""
    try:
        return _PROFILES[service]
    except KeyError:
        raise KeyError(
            f"unknown service {service!r}; expected one of {sorted(_PROFILES)}"
        ) from None


@lru_cache(maxsize=1)
def all_profiles() -> dict[str, ServiceProfile]:
    return dict(_PROFILES)


LEVEL2_ROWS = _LEVEL2_ROWS
FLOW_CELLS = _CELLS
