"""The six audited services and their destination pools.

Maps each service to its first-party infrastructure and carves its
third-party contact pools out of the shared domain universe.  Pool
slicing is deterministic and eSLD-driven so the per-service domain and
eSLD counts land near Table 1:

1. every service first gets the *shared head* — the big-name trackers
   everyone embeds (Google Analytics, DoubleClick, Amazon, Adobe) —
   which produces the cross-service overlap in Table 1 (per-service
   domain counts sum to 1,098 but only 964 are unique);
2. then the eSLDs of its Figure-5 partner organizations;
3. then a slice of the long tail starting at a per-service offset, so
   tails overlap as little as the universe size allows;
4. non-ATS third parties (CDNs, APIs) are appended the same way.

The slicer then takes eSLDs until the service's Table-1 eSLD target is
met, drawing FQDNs under them until the FQDN target is met.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.destinations.dataset import DomainUniverse, default_universe
from repro.model import Platform
from repro.net.psl import esld as esld_of
from repro.services.profiles import ServiceProfile, all_profiles


@dataclass(frozen=True)
class ServiceSpec:
    """Static facts about one audited service."""

    key: str
    display_name: str
    category: str  # gaming / social media / education
    platforms: tuple[Platform, ...]
    first_party_names: tuple[str, ...]  # name fragments for party matching
    first_party_owner: str
    requires_parent_email: bool  # active parental consent for <13
    profile: ServiceProfile
    # Destination pools (FQDN lists, stable order):
    first_party_pool: tuple[str, ...]
    first_party_ats_pool: tuple[str, ...]
    third_party_ats_pool: tuple[str, ...]
    third_party_non_ats_pool: tuple[str, ...]

    def all_contactable(self) -> list[str]:
        return (
            list(self.first_party_pool)
            + list(self.first_party_ats_pool)
            + list(self.third_party_ats_pool)
            + list(self.third_party_non_ats_pool)
        )

    def third_party_pool_interleaved(self) -> list[str]:
        """ATS and non-ATS third parties interleaved roughly 3:1 — the
        order linkable partners are drawn in (the observed third-party
        ATS / non-ATS census is ~485:150, §4.2)."""
        ats = list(self.third_party_ats_pool)
        non_ats = list(self.third_party_non_ats_pool)
        out: list[str] = []
        ats_index = non_ats_index = 0
        position = 0
        while ats_index < len(ats) or non_ats_index < len(non_ats):
            # Non-ATS at positions 1, 5, 9, … — early enough that even
            # a two-partner column (TikTok child) has one of each kind,
            # which the Table 4 grid's separate share-3rd and
            # share-3rd-ATS cells require.
            take_non_ats = position % 4 == 1
            if take_non_ats and non_ats_index < len(non_ats):
                out.append(non_ats[non_ats_index])
                non_ats_index += 1
            elif ats_index < len(ats):
                out.append(ats[ats_index])
                ats_index += 1
            elif non_ats_index < len(non_ats):
                out.append(non_ats[non_ats_index])
                non_ats_index += 1
            position += 1
        return out


# The trackers everybody embeds — the overlap head shared by services.
_SHARED_HEAD_ESLDS = (
    "google-analytics.com",
    "doubleclick.net",
    "googletagmanager.com",
    "googlesyndication.com",
    "amazon-adsystem.com",
    "demdex.net",
    "omtrdc.net",
    "facebook.net",
    "scorecardresearch.com",
    "onetrust.com",
    "cookielaw.org",
)

_SHARED_NON_ATS_ESLDS = (
    "cloudfront.net",
    "googleapis.com",
    "amazonaws.com",
    "jsdelivr.net",
    "cdnjs.com",
    "fastly.net",
)

# Third-party contact targets derived from Table 1 minus the service's
# first-party fan-out: (fqdns, eslds, non_ats_fqdns).
_THIRD_TARGETS: dict[str, tuple[int, int, int]] = {
    "duolingo": (101, 67, 20),
    "minecraft": (86, 49, 28),
    "quizlet": (507, 255, 70),
    "roblox": (69, 21, 18),
    "tiktok": (44, 8, 6),
    "youtube": (0, 0, 0),  # YouTube never leaves Google's estate
}

# Order in which services claim their long-tail slice (Quizlet last —
# its 255-eSLD slice would otherwise swallow everyone else's range).
_TAIL_ORDER = ("duolingo", "minecraft", "roblox", "tiktok", "youtube", "quizlet")

_META: dict[str, tuple[str, str, tuple[Platform, ...], bool]] = {
    "duolingo": ("Duolingo", "education", (Platform.WEB, Platform.MOBILE), False),
    "minecraft": (
        "Minecraft",
        "gaming",
        (Platform.WEB, Platform.MOBILE, Platform.DESKTOP),
        True,
    ),
    "quizlet": ("Quizlet", "education", (Platform.WEB, Platform.MOBILE), False),
    "roblox": (
        "Roblox",
        "gaming",
        (Platform.WEB, Platform.MOBILE, Platform.DESKTOP),
        True,
    ),
    "tiktok": ("TikTok", "social media", (Platform.WEB, Platform.MOBILE), False),
    "youtube": ("YouTube", "social media", (Platform.WEB, Platform.MOBILE), True),
}

_FIRST_PARTY_NAMES: dict[str, tuple[str, ...]] = {
    "duolingo": ("duolingo",),
    "minecraft": (
        "minecraft",
        "mojang",
        "microsoft",
        "xboxlive",
        "clarity",
        "msftconnecttest",
    ),
    "quizlet": ("quizlet", "qzlt"),
    "roblox": ("roblox", "rbxcdn", "robloxlabs"),
    "tiktok": ("tiktok", "tiktokv", "tiktokcdn", "musical", "byteoversea", "ibytedtos"),
    "youtube": (
        "youtube",
        "youtubekids",
        "ytimg",
        "googlevideo",
        "google",
        "gstatic",
        "googleapis",
        "googleusercontent",
        "ggpht",
        "gvt1",
        "google-analytics",
        "doubleclick",
        "googletagmanager",
        "googlesyndication",
        "googleadservices",
        "admob",
    ),
}


def _group_by_esld(fqdns: list[str]) -> dict[str, list[str]]:
    groups: dict[str, list[str]] = {}
    for fqdn in fqdns:
        groups.setdefault(esld_of(fqdn), []).append(fqdn)
    return groups


def _slice_pool(
    esld_order: list[str],
    fqdns_by_esld: dict[str, list[str]],
    esld_target: int,
    fqdn_target: int,
) -> list[str]:
    """Pick FQDNs spanning ~``esld_target`` eSLDs, ~``fqdn_target`` FQDNs.

    First pass takes one FQDN per eSLD (maximizing eSLD coverage), then
    rounds fill remaining FQDN budget breadth-first.
    """
    chosen_eslds = [e for e in esld_order if fqdns_by_esld.get(e)][:esld_target]
    picked: list[str] = []
    depth = 0
    while len(picked) < fqdn_target:
        advanced = False
        for domain in chosen_eslds:
            bucket = fqdns_by_esld[domain]
            if depth < len(bucket):
                picked.append(bucket[depth])
                advanced = True
                if len(picked) >= fqdn_target:
                    break
        if not advanced:
            break
        depth += 1
    return picked


def _build_spec(key: str, universe: DomainUniverse) -> ServiceSpec:
    profile = all_profiles()[key]
    display, category, platforms, parent_email = _META[key]
    infra = universe.first_party_infra[key]
    owner = infra.organization.name

    fp_all = universe.first_party_fqdns(key)
    fp_ats = set(universe.first_party_ats_hosts(key))
    first_party_pool = tuple(f for f in fp_all if f not in fp_ats)
    first_party_ats_pool = tuple(f for f in fp_all if f in fp_ats)

    own_eslds = set(infra.organization.eslds)
    fqdn_target, esld_target, non_ats_target = _THIRD_TARGETS[key]
    non_ats_esld_target = max(1, non_ats_target // 3) if non_ats_target else 0
    ats_esld_target = max(0, esld_target - non_ats_esld_target)

    # -- ATS pool ------------------------------------------------------
    ats_fqdns = [f for f in universe.ats_fqdns() if esld_of(f) not in own_eslds]
    # Google's shared trackers live under its first-party infra; expose
    # them to everyone else as third parties.
    if key != "youtube":
        ats_fqdns = [
            host
            for host in universe.first_party_ats_hosts("youtube")
            if esld_of(host) in _SHARED_HEAD_ESLDS
        ] + ats_fqdns
    groups = _group_by_esld(ats_fqdns)

    partner_names = set(profile.partner_orgs)
    partner_eslds: list[str] = []
    for org in (*universe.named_ats_orgs, *universe.tail_ats_orgs):
        if org.name in partner_names:
            partner_eslds.extend(d for d in org.eslds if d not in own_eslds)

    tail_eslds = [
        domain
        for org in universe.tail_ats_orgs
        for domain in org.eslds
        if org.name not in partner_names
    ]
    other_named = [
        domain
        for org in universe.named_ats_orgs
        for domain in org.eslds
        if org.name not in partner_names
        and domain not in _SHARED_HEAD_ESLDS
        and domain not in own_eslds
    ]
    # Per-service offset into the long tail keeps tails mostly
    # disjoint; Quizlet goes last because its slice dwarfs the rest.
    offset = 0
    for other in _TAIL_ORDER:
        if other == key:
            break
        offset += max(0, _THIRD_TARGETS[other][1])
    rotated_tail = tail_eslds[offset % max(1, len(tail_eslds)) :] + tail_eslds[: offset % max(1, len(tail_eslds))]

    # Interleave the service's partner organizations (Figure 5's most
    # contacted trackers) with the shared head (the Google/Amazon/Adobe
    # trackers everyone embeds), then append the long tail — so a
    # service's most contacted ATS mixes both, as the paper observed.
    head = [d for d in _SHARED_HEAD_ESLDS if d not in own_eslds]
    interleaved: list[str] = []
    head_index = 0
    for index, partner in enumerate(partner_eslds):
        interleaved.append(partner)
        # One head tracker after every two partner domains (2:1 mix).
        if index % 2 == 1 and head_index < len(head):
            interleaved.append(head[head_index])
            head_index += 1
    interleaved.extend(head[head_index:])
    esld_order = list(dict.fromkeys(interleaved + rotated_tail + other_named))
    third_ats = tuple(
        _slice_pool(esld_order, groups, ats_esld_target, fqdn_target - non_ats_target)
    )

    # -- non-ATS pool ----------------------------------------------------
    non_ats_fqdns = [
        f
        for f in universe.non_ats_third_party_fqdns()
        if esld_of(f) not in own_eslds
    ]
    non_ats_groups = _group_by_esld(non_ats_fqdns)
    tail_non_ats = [d for d in non_ats_groups if d not in _SHARED_NON_ATS_ESLDS]
    non_ats_offset = offset // 3
    rotated = (
        tail_non_ats[non_ats_offset % max(1, len(tail_non_ats)) :]
        + tail_non_ats[: non_ats_offset % max(1, len(tail_non_ats))]
    )
    non_ats_order = list(
        dict.fromkeys(
            [d for d in _SHARED_NON_ATS_ESLDS if d not in own_eslds] + rotated
        )
    )
    third_non_ats = (
        tuple(
            _slice_pool(
                non_ats_order, non_ats_groups, non_ats_esld_target, non_ats_target
            )
        )
        if non_ats_target
        else ()
    )

    return ServiceSpec(
        key=key,
        display_name=display,
        category=category,
        platforms=platforms,
        first_party_names=_FIRST_PARTY_NAMES[key],
        first_party_owner=owner,
        requires_parent_email=parent_email,
        profile=profile,
        first_party_pool=first_party_pool,
        first_party_ats_pool=first_party_ats_pool,
        third_party_ats_pool=third_ats,
        third_party_non_ats_pool=third_non_ats,
    )


@lru_cache(maxsize=1)
def _catalog() -> dict[str, ServiceSpec]:
    universe = default_universe()
    return {key: _build_spec(key, universe) for key in _META}


def service(key: str) -> ServiceSpec:
    """Look one service up by key (``"roblox"``, ``"tiktok"``, …)."""
    catalog = _catalog()
    try:
        return catalog[key]
    except KeyError:
        raise KeyError(
            f"unknown service {key!r}; expected one of {sorted(catalog)}"
        ) from None


def SERVICES() -> list[ServiceSpec]:
    """All six services in canonical order."""
    return list(_catalog().values())
