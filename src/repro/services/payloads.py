"""Payload key/value synthesis — the raw data types in traffic.

The paper extracted 3,968 unique raw data types (key strings) from
payload JSON, query strings and cookies (§3.2.2): plain words
(``email``), abbreviations (``os``, ``rtt``), and concatenations
(``pers_ad_show_third_part_measurement``, ``IsOptOutEmailShown``).
This module synthesizes the same population:

* per level-3 ontology category, a list of **base keys** (realistic
  traffic spellings);
* deterministic **shape transforms** (snake/camel/kebab/dotted,
  SDK-style prefixes) that multiply the base keys into thousands of
  unique variants while preserving their meaning;
* a slice of **opaque keys** (``bffp``, ``xq3c``) whose meaning is
  internal to the imaginary developer — these are what drives the
  classifiers' confidence thresholds;
* value factories producing plausible values per category.

Every generated key is registered with its ground-truth category, the
label a human would assign during the paper's manual validation
(§3.2.2's 10% sample).  The analysis pipeline never sees this registry
— only the classifier-validation harness does.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.ontology.nodes import Level3

# ---------------------------------------------------------------------
# Base keys per category — realistic spellings found in real traffic.
# ---------------------------------------------------------------------

BASE_KEYS: dict[Level3, tuple[str, ...]] = {
    Level3.NAME: (
        "first_name", "last_name", "full_name", "username", "display_name",
        "nickname", "real_name", "given_name", "family_name", "screen_name",
    ),
    Level3.CONTACT_INFORMATION: (
        "email", "email_address", "phone", "phone_number", "contact_email",
        "parent_email", "recovery_email", "tel", "mobile_number",
    ),
    Level3.ALIASES: (
        "user_id", "uid", "uuid", "guid", "account_id", "profile_id",
        "member_id", "player_id", "visitor_id", "anon_id", "online_id",
    ),
    Level3.REASONABLY_LINKABLE_PERSONAL_IDENTIFIERS: (
        "ip", "ip_address", "client_ip", "remote_addr", "x_forwarded_for",
        "pseudonym", "pseudo_id",
    ),
    Level3.LOGIN_INFORMATION: (
        "password", "passwd", "auth_token", "access_token", "refresh_token",
        "session_token", "csrf_token", "api_key", "bearer", "login", "otp_code",
    ),
    Level3.CUSTOMER_NUMBERS: (
        "customer_number", "account_number", "card_number", "billing_account",
    ),
    Level3.LINKED_PERSONAL_IDENTIFIERS: (
        "ssn", "passport_number", "drivers_license",
    ),
    Level3.DEVICE_HARDWARE_IDENTIFIERS: (
        "device_id", "imei", "mac_address", "android_id", "hardware_id",
        "serial_number", "device_serial", "hw_id", "board_serial",
    ),
    Level3.DEVICE_SOFTWARE_IDENTIFIERS: (
        "advertising_id", "ad_id", "gaid", "idfa", "idfv", "cookie_id",
        "install_id", "instance_id", "app_instance_id", "client_id",
        "tracking_id", "pixel_id", "beacon_id", "fingerprint",
    ),
    Level3.DEVICE_INFORMATION: (
        "os", "os_version", "device_model", "device_type", "user_agent",
        "screen_width", "screen_height", "screen_resolution", "pixel_ratio",
        "browser", "browser_version", "cpu_cores", "memory_gb", "battery_level",
        "fps", "bitrate", "abr", "render_delay", "download_speed", "buffer_size",
        "frame_rate", "color_depth", "sound_enabled",
    ),
    Level3.AGE: (
        "age", "birthday", "birth_date", "birth_year", "dob", "age_group",
        "age_band", "under_13", "yob",
    ),
    Level3.LANGUAGE: (
        "language", "lang", "locale", "ui_language", "accept_language",
        "preferred_language",
    ),
    Level3.GENDER_SEX: ("gender", "sex", "pronouns", "gender_identity"),
    Level3.RACE: ("ethnicity", "race"),
    Level3.RELIGION: ("religion",),
    Level3.MARITAL_STATUS: ("marital_status",),
    Level3.MILITARY_VETERAN_STATUS: ("veteran_status",),
    Level3.MEDICAL_CONDITIONS: ("medical_condition",),
    Level3.GENETIC_INFORMATION: ("dna_profile",),
    Level3.DISABILITIES: ("accessibility_mode",),
    Level3.BIOMETRIC_INFORMATION: ("voiceprint", "face_template"),
    Level3.PERSONAL_HISTORY: ("education_level", "school_name", "grade_level"),
    Level3.PRECISE_GEOLOCATION: (
        "latitude", "longitude", "lat", "lng", "gps_coords", "postal_address",
        "street_address", "zip",
    ),
    Level3.COARSE_GEOLOCATION: (
        "country", "country_code", "region", "city", "geo", "geo_region",
        "market", "territory",
    ),
    Level3.LOCATION_TIME: (
        "timestamp", "ts", "timezone", "tz_offset", "utc_offset", "local_time",
        "client_time", "event_time", "date", "epoch_ms",
    ),
    Level3.COMMUNICATIONS: ("message_text", "chat_message", "comment_body"),
    Level3.CONTACTS: ("contact_list", "friends_list", "address_book"),
    Level3.INTERNET_ACTIVITY: ("search_query", "browsing_history", "visited_url"),
    Level3.NETWORK_CONNECTION_INFORMATION: (
        "rtt", "ttfb", "protocol", "connection_type", "network_type",
        "carrier", "dns_time", "tcp_time", "tls_version", "request_id",
        "response_code", "referer", "host", "cache_status", "telemetry_batch",
        "payload_size", "effective_bandwidth", "ssid_hash",
    ),
    Level3.SENSOR_DATA: ("accelerometer", "gyroscope", "mic_level"),
    Level3.PRODUCTS_AND_ADVERTISING: (
        "ad_unit", "ad_impression", "campaign_id", "campaign", "creative_id",
        "bid_price", "bid_id", "auction_id", "placement_id", "ad_click",
        "conversion", "utm_source", "utm_medium", "utm_campaign", "advertiser_id",
        "pers_ad_show_third_part_measurement", "ad_frequency", "marketing_opt_in",
    ),
    Level3.APP_OR_SERVICE_USAGE: (
        "event", "event_name", "action", "session_id", "session_duration",
        "screen_view", "page_view", "click_target", "scroll_depth",
        "watch_time", "play_position", "video_id", "volume_level", "avatar_state",
        "level_progress", "score", "streak_days", "study_session", "quiz_score",
        "game_time", "content_id", "interaction_count", "engagement_ms",
    ),
    Level3.ACCOUNT_SETTINGS: (
        "settings", "consent", "consent_status", "gdpr_consent", "ccpa_opt_out",
        "notification_pref", "privacy_mode", "parental_controls",
        "IsOptOutEmailShown", "marketing_consent", "cookie_consent",
        "restricted_mode", "autoplay_enabled",
    ),
    Level3.SERVICE_INFORMATION: (
        "app_version", "sdk_version", "api_version", "build_number", "platform",
        "bundle_id", "package_name", "page_url", "site_section", "environment",
        "release_channel", "server_region", "cdn_node", "script_version",
        "experiment_id", "feature_flags", "dom_ready", "app_name", "source_url",
    ),
    Level3.INFERENCES: (
        "interest_segment", "audience_segment", "user_segment", "affinity_score",
        "recommendation_bucket", "predicted_interest", "propensity_score",
        "persona", "cohort",
    ),
}

# Industry-standard parameter names per category — the keys trackers
# and SDKs document publicly (GA's ``cid``-style params, MMP payload
# fields).  Used for coverage-critical flows: unambiguous to any
# annotator or classifier.  tests/test_payloads.py asserts each stays
# correctly classified by the default majority-vote model.
STABLE_KEYS: dict[Level3, tuple[str, ...]] = {
    Level3.NAME: ("first_name", "display_name", "nickname"),
    Level3.CONTACT_INFORMATION: ("email", "email_address", "phone_number"),
    Level3.ALIASES: ("user_id", "uid", "uuid", "guid"),
    Level3.REASONABLY_LINKABLE_PERSONAL_IDENTIFIERS: ("ip_address",),
    Level3.LOGIN_INFORMATION: ("password", "auth_token", "access_token"),
    Level3.DEVICE_HARDWARE_IDENTIFIERS: ("device_id", "imei", "mac_address", "android_id"),
    Level3.DEVICE_SOFTWARE_IDENTIFIERS: ("advertising_id", "idfa", "cookie_id", "ad_id"),
    Level3.DEVICE_INFORMATION: ("os", "os_version", "device_model", "user_agent"),
    Level3.AGE: ("age", "birth_date", "birth_year"),
    Level3.LANGUAGE: ("language", "locale", "ui_language"),
    Level3.GENDER_SEX: ("gender", "sex"),
    Level3.COARSE_GEOLOCATION: ("country", "country_code", "region", "city"),
    Level3.LOCATION_TIME: ("timestamp", "timezone", "tz_offset"),
    Level3.NETWORK_CONNECTION_INFORMATION: ("rtt", "ttfb", "protocol", "connection_type"),
    Level3.PRODUCTS_AND_ADVERTISING: ("ad_unit", "campaign_id", "ad_impression"),
    Level3.APP_OR_SERVICE_USAGE: ("event_name", "session_duration", "screen_view"),
    Level3.ACCOUNT_SETTINGS: ("consent_status", "gdpr_consent", "settings"),
    Level3.SERVICE_INFORMATION: ("app_version", "api_version", "build_number"),
    Level3.INFERENCES: ("interest_segment", "audience_segment", "affinity_score"),
}

# SDK-style prefixes seen in the wild; applied as "<prefix>_<key>" etc.
SDK_PREFIXES: tuple[str, ...] = (
    "ga", "fb", "amp", "mp", "bz", "af", "adj", "sp", "ttq", "yt",
    "sdk", "client", "ctx", "meta", "evt", "usr", "dev", "req",
)

# Developer abbreviations: readable to anyone with programming world
# knowledge (and to the abbreviation-expanding classifier), nearly
# invisible to surface string matching — "dob" shares no trigrams with
# "date of birth".
_TOKEN_ABBREV: dict[str, str] = {
    "password": "pwd",
    "message": "msg",
    "language": "lang",
    "latitude": "lat",
    "longitude": "lng",
    "timezone": "tz",
    "timestamp": "ts",
    "session": "sess",
    "request": "req",
    "response": "resp",
    "authentication": "auth",
    "preferences": "prefs",
    "version": "ver",
    "application": "app",
    "telephone": "tel",
    "download": "dl",
    "user": "usr",
    "account": "acct",
    "identifier": "id",
    "advertising": "adv",
    "geolocation": "geo",
    "location": "loc",
    "number": "num",
    "email": "eml",
    "address": "addr",
    "country": "cntry",
    "region": "rgn",
    "screen": "scr",
    "model": "mdl",
    "gender": "gndr",
    "coordinates": "crd",
    "impression": "impr",
    "campaign": "cmp",
    "segment": "seg",
    "token": "tkn",
    "history": "hist",
    "query": "qry",
    "connection": "conn",
    "protocol": "proto",
    "birthday": "bday",
    "duration": "dur",
}

# Heavy decoration templates ("IsOptOutEmailShown" style).
_WRAP_TEMPLATES: tuple[str, ...] = (
    "is_{b}_shown",
    "has_{b}_set",
    "{b}_enabled",
    "get_{b}_value",
    "x_{b}_hdr",
    "show_{b}_part",
    "last_{b}_sync_state",
    "opt_{b}_measurement",
    "cur_{b}_snapshot",
    "{b}_raw_blob",
)


def _to_camel(key: str) -> str:
    parts = key.split("_")
    return parts[0] + "".join(p.capitalize() for p in parts[1:])


def _to_pascal(key: str) -> str:
    return "".join(p.capitalize() for p in key.split("_"))


def _to_kebab(key: str) -> str:
    return key.replace("_", "-")


def _to_dotted(key: str) -> str:
    return key.replace("_", ".")


_SHAPES = (
    lambda k: k,
    _to_camel,
    _to_pascal,
    _to_kebab,
    _to_dotted,
)


@dataclass
class KeyRegistry:
    """Ground truth: every emitted key and its true category."""

    truth: dict[str, Level3] = field(default_factory=dict)
    opaque: set[str] = field(default_factory=set)

    def register(self, key: str, label: Level3, opaque: bool = False) -> None:
        existing = self.truth.get(key)
        if existing is not None and existing is not label:
            # Key shapes are category-derived, so collisions across
            # categories indicate a synthesis bug.
            raise ValueError(f"key {key!r} registered for {existing} and {label}")
        self.truth[key] = label
        if opaque:
            self.opaque.add(key)

    def __len__(self) -> int:
        return len(self.truth)


class PayloadFactory:
    """Deterministic pool of (key, value) material per category.

    ``variants_per_base`` controls how many shape/prefix variants each
    base key receives; the default lands the full corpus near the
    paper's 3,968 unique data types.
    """

    def __init__(
        self,
        seed: int = 2023,
        variants_per_base: int = 17,
        opaque_per_category: int = 11,
    ) -> None:
        self._rng = random.Random(seed)
        self.registry = KeyRegistry()
        self._pools: dict[Level3, list[str]] = {}
        for label, bases in BASE_KEYS.items():
            pool: list[str] = []
            for base in bases:
                pool.append(base)
                self.registry.register(base, label)
                variants = self._variants(base, variants_per_base)
                for variant in variants:
                    if variant in self.registry.truth:
                        continue
                    self.registry.register(variant, label)
                    pool.append(variant)
            for _ in range(opaque_per_category):
                key = self._opaque_key()
                if key in self.registry.truth:
                    continue
                self.registry.register(key, label, opaque=True)
                pool.append(key)
            self._pools[label] = pool
        # pick_keys splits each pool into clear/opaque on every call
        # otherwise — at corpus scale that filter dominated generation.
        # Pools and the opaque set are fixed after construction, so the
        # split is computed once per category.
        opaque = self.registry.opaque
        self._clear_pools = {
            label: [k for k in pool if k not in opaque]
            for label, pool in self._pools.items()
        }
        self._opaque_pools = {
            label: [k for k in pool if k in opaque]
            for label, pool in self._pools.items()
        }
        self._canonical_pools = {
            label: list(STABLE_KEYS.get(label) or BASE_KEYS[label])
            for label in self._pools
        }

    def _variants(self, base: str, count: int) -> list[str]:
        """Shape/prefix/wrap variants of one base key.

        Mix mirrors real traffic: a minority of clean case variants,
        then SDK-prefixed forms, then heavily decorated compounds
        (``IsOptOutEmailShown``, ``pers_ad_show_third_part_measurement``
        style) that surface-similarity methods struggle with.
        """
        out: list[str] = []
        shapes = list(_SHAPES)
        prefixes = list(SDK_PREFIXES)
        wraps = list(_WRAP_TEMPLATES)
        self._rng.shuffle(prefixes)
        self._rng.shuffle(wraps)
        abbreviated = "_".join(
            _TOKEN_ABBREV.get(token, token) for token in base.split("_")
        )
        for index in range(count):
            shape = shapes[index % len(shapes)]
            if index < 2:
                candidate = shape(base)
            elif index < 4:
                prefix = prefixes[index % len(prefixes)]
                candidate = shape(f"{prefix}_{base}")
            elif index < 7:
                template = wraps[index % len(wraps)]
                candidate = shape(template.format(b=base))
            elif index < 11 and abbreviated != base:
                prefix = prefixes[index % len(prefixes)]
                candidate = shape(abbreviated if index == 7 else f"{prefix}_{abbreviated}")
            else:
                template = wraps[index % len(wraps)]
                candidate = shape(template.format(b=abbreviated))
            if candidate != base:
                out.append(candidate)
        return list(dict.fromkeys(out))

    def _opaque_key(self) -> str:
        length = self._rng.randint(3, 5)
        return "".join(
            self._rng.choice(string.ascii_lowercase + string.digits)
            for _ in range(length)
        )

    # -- key selection -------------------------------------------------

    def pool(self, label: Level3) -> list[str]:
        return list(self._pools[label])

    def keys_for_categories(self, labels) -> list[str]:
        """Every registry key whose truth is one of ``labels``."""
        wanted = set(labels)
        return [key for key, truth in self.registry.truth.items() if truth in wanted]

    def pick_keys(
        self,
        label: Level3,
        rng: random.Random,
        count: int = 1,
        avoid_opaque: bool = False,
        canonical: bool = False,
    ) -> list[str]:
        """Sample keys for one category; ~12% of picks are opaque.

        ``avoid_opaque`` draws only meaningful keys; ``canonical``
        draws only undis-guised base keys — used for linkable bundles,
        mirroring that trackers' own parameters are standardized,
        well-known names (``idfa``, ``bid_price``, ``campaign_id``).
        """
        pool = self._pools[label]
        clear = self._clear_pools[label]
        picks: list[str] = []
        for _ in range(count):
            if canonical:
                picks.append(rng.choice(self._canonical_pools[label]))
                continue
            if avoid_opaque and clear:
                picks.append(rng.choice(clear))
                continue
            if rng.random() < 0.12:
                opaque = self._opaque_pools[label]
                if opaque:
                    picks.append(rng.choice(opaque))
                    continue
            picks.append(rng.choice(pool))
        return picks

    # -- value synthesis -----------------------------------------------

    def make_value(self, label: Level3, rng: random.Random):
        """A plausible value for a key of the given category."""
        make = _VALUE_FACTORIES.get(label)
        if make is None:
            return rng.randint(0, 9999)
        return make(rng)


def _hex_id(rng: random.Random, length: int = 16) -> str:
    return "".join(rng.choice("0123456789abcdef") for _ in range(length))


def _uuid(rng: random.Random) -> str:
    raw = _hex_id(rng, 32)
    return f"{raw[:8]}-{raw[8:12]}-{raw[12:16]}-{raw[16:20]}-{raw[20:]}"


_FIRST_NAMES = ("alex", "sam", "jordan", "taylor", "casey", "riley", "devon")
_LAST_NAMES = ("smith", "garcia", "chen", "patel", "mueller", "rossi", "kim")
_CITIES = ("irvine", "seattle", "austin", "boston", "denver", "miami")
_COUNTRIES = ("US", "GB", "DE", "BR", "JP", "AU", "CA")
_LOCALES = ("en-US", "en-GB", "es-MX", "de-DE", "pt-BR", "ja-JP")
_OSES = ("Android 13", "Android 14", "Windows 11", "macOS 14.1", "iOS 17.0")
_MODELS = ("Pixel 6", "Pixel 7", "SM-G991B", "iPhone14,2", "generic_x86")
_EVENTS = ("app_open", "screen_view", "button_click", "video_play", "level_up",
           "quiz_complete", "lesson_finish", "purchase_view", "search", "share")
_SEGMENTS = ("casual_gamer", "language_learner", "k12_student", "video_binger",
             "creative_builder", "social_teen")

_VALUE_FACTORIES = {
    Level3.NAME: lambda rng: f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
    Level3.CONTACT_INFORMATION: lambda rng: f"{rng.choice(_FIRST_NAMES)}{rng.randint(1, 999)}@example.com",
    Level3.ALIASES: _uuid,
    Level3.REASONABLY_LINKABLE_PERSONAL_IDENTIFIERS: lambda rng: (
        f"{rng.randint(11, 223)}.{rng.randint(0, 255)}.{rng.randint(0, 255)}.{rng.randint(1, 254)}"
    ),
    Level3.LOGIN_INFORMATION: lambda rng: _hex_id(rng, 40),
    Level3.CUSTOMER_NUMBERS: lambda rng: str(rng.randint(10**9, 10**10 - 1)),
    Level3.LINKED_PERSONAL_IDENTIFIERS: lambda rng: str(rng.randint(10**8, 10**9 - 1)),
    Level3.DEVICE_HARDWARE_IDENTIFIERS: lambda rng: _hex_id(rng, 16),
    Level3.DEVICE_SOFTWARE_IDENTIFIERS: _uuid,
    Level3.DEVICE_INFORMATION: lambda rng: rng.choice(
        (rng.choice(_OSES), rng.choice(_MODELS), f"{rng.choice((1080, 1440, 2340))}x{rng.choice((1920, 2560, 1080))}")
    ),
    Level3.AGE: lambda rng: rng.choice((str(rng.randint(8, 40)), f"{rng.randint(1984, 2015)}-0{rng.randint(1, 9)}-1{rng.randint(0, 9)}")),
    Level3.LANGUAGE: lambda rng: rng.choice(_LOCALES),
    Level3.GENDER_SEX: lambda rng: rng.choice(("m", "f", "x", "prefer_not")),
    Level3.PRECISE_GEOLOCATION: lambda rng: round(rng.uniform(-90, 90), 6),
    Level3.COARSE_GEOLOCATION: lambda rng: rng.choice(_CITIES + _COUNTRIES),
    Level3.LOCATION_TIME: lambda rng: 1_697_000_000 + rng.randint(0, 4_000_000),
    Level3.COMMUNICATIONS: lambda rng: "hello there!",
    Level3.CONTACTS: lambda rng: [f"friend_{rng.randint(1, 50)}" for _ in range(2)],
    Level3.INTERNET_ACTIVITY: lambda rng: rng.choice(("spanish verbs", "parkour map", "lofi mix")),
    Level3.NETWORK_CONNECTION_INFORMATION: lambda rng: rng.choice(
        (rng.randint(5, 400), "wifi", "h2", "TLSv1.3", "4g", f"{rng.randint(10, 900)}ms")
    ),
    Level3.SENSOR_DATA: lambda rng: [round(rng.uniform(-1, 1), 3) for _ in range(3)],
    Level3.PRODUCTS_AND_ADVERTISING: lambda rng: rng.choice(
        (f"cmp_{rng.randint(100, 999)}", round(rng.uniform(0.01, 4.5), 2), f"unit_{rng.randint(1, 60)}")
    ),
    Level3.APP_OR_SERVICE_USAGE: lambda rng: rng.choice(
        (rng.choice(_EVENTS), rng.randint(1, 3600), f"scr_{rng.randint(1, 40)}")
    ),
    Level3.ACCOUNT_SETTINGS: lambda rng: rng.choice((True, False, "granted", "denied")),
    Level3.SERVICE_INFORMATION: lambda rng: rng.choice(
        (f"{rng.randint(1, 9)}.{rng.randint(0, 20)}.{rng.randint(0, 9)}", "prod", "web", "android")
    ),
    Level3.INFERENCES: lambda rng: rng.choice(_SEGMENTS),
    Level3.PERSONAL_HISTORY: lambda rng: rng.choice(("grade_7", "high_school", "college")),
    Level3.BIOMETRIC_INFORMATION: lambda rng: _hex_id(rng, 24),
}
