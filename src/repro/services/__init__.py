"""Synthetic general-audience service simulator.

The paper's raw input is network traffic collected by hand from six
real services (§3.1).  Offline, this package generates traffic with
the same statistical shape, driven by ground-truth behaviour profiles
transcribed from the paper's results:

* :mod:`repro.services.profiles` — the Table 4 data-flow grid, the
  Figure 3/4 linkability calibration, and the Table 1 volume targets;
* :mod:`repro.services.catalog` — the six service specs and their
  destination pools drawn from the domain universe;
* :mod:`repro.services.payloads` — realistic payload key/value
  synthesis per ontology category (the raw data types);
* :mod:`repro.services.sessions` — the interaction scripts (account
  creation, logged-in usage, logged-out browsing);
* :mod:`repro.services.generator` — turns profiles into ordered
  :class:`repro.net.http.HttpRequest` traces per platform.

The *analysis* pipeline never reads the profiles — only the serialized
HAR/PCAP artifacts produced by :mod:`repro.capture`.
"""

from repro.services.catalog import SERVICES, ServiceSpec, service
from repro.services.generator import (
    LOAD_PROFILES,
    CorpusConfig,
    LoadProfile,
    RawTrace,
    TrafficGenerator,
)
from repro.services.profiles import ServiceProfile, profile_for

__all__ = [
    "SERVICES",
    "ServiceSpec",
    "service",
    "CorpusConfig",
    "LoadProfile",
    "LOAD_PROFILES",
    "RawTrace",
    "TrafficGenerator",
    "ServiceProfile",
    "profile_for",
]
