"""Traffic generator — turns behaviour profiles into request traces.

For each service, platform and trace unit (account creation / logged-in
per age group, plus one logged-out trace, §3.1) the generator emits an
ordered list of HTTP requests that:

* covers **every cell of the Table 4 grid** allowed on that platform at
  least once, and *never* emits a data flow the grid forbids;
* sends **linkable bundles** (≥1 identifier + ≥1 personal-information
  type) to exactly the number of third parties Figure 3 reports for the
  trace column, with the column's top partner receiving the Figure 4
  largest-set types;
* contacts the remaining third-party pool with **non-linkable beacons**
  (single-side data) so the per-service domain counts land near
  Table 1;
* pads each unit with **filler traffic** (static fetches on web,
  certificate-pinned encrypted requests on mobile — the Frida-bypass
  failures of §3.1.1) so packet volumes track Table 1 at the configured
  scale.

The generator is fully deterministic for a given :class:`CorpusConfig`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.model import AgeGroup, FlowCell, Platform, Presence, TraceColumn, TraceKind
from repro.net.http import Header, HttpRequest
from repro.net.url import Url, encode_query
from repro.ontology.nodes import Level2, Level3
from repro.net.psl import esld as esld_of
from repro.services.catalog import _SHARED_HEAD_ESLDS, ServiceSpec, SERVICES
from repro.services.payloads import PayloadFactory
from repro.services.profiles import (
    FLOW_CELLS,
    LEVEL2_ROWS,
    LEVEL3_BY_LEVEL2,
    ServiceProfile,
)
from repro.services.sessions import Interaction, script_for

_USER_AGENTS = {
    Platform.WEB: (
        "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) "
        "Chrome/118.0.0.0 Safari/537.36"
    ),
    Platform.MOBILE: (
        "Mozilla/5.0 (Linux; Android 13; Pixel 6) AppleWebKit/537.36 (KHTML, like Gecko) "
        "Chrome/118.0.0.0 Mobile Safari/537.36"
    ),
    Platform.DESKTOP: "repro-desktop-client/1.0 (Windows NT 10.0; Win64; x64)",
}

# Types a user has not disclosed while logged out (no account ⇒ no age,
# no gender on file).
_UNDISCLOSED_WHEN_LOGGED_OUT = frozenset({Level3.AGE, Level3.GENDER_SEX})

# Durations per trace kind (paper: ≥5 min for account/logged-in traces,
# shorter logged-out traces).
_DURATIONS = {
    TraceKind.ACCOUNT_CREATION: 330.0,
    TraceKind.LOGGED_IN: 420.0,
    TraceKind.LOGGED_OUT: 150.0,
}

_PACKET_WEIGHTS = {
    TraceKind.ACCOUNT_CREATION: 1.0,
    TraceKind.LOGGED_IN: 2.0,
    TraceKind.LOGGED_OUT: 0.5,
}


@dataclass(frozen=True)
class LoadProfile:
    """A named traffic-intensity preset (SNIPPETS-style load modes).

    Profiles scale the configured volume without touching the
    structural results: the Table 4 grid and the Figure 3/4 linkable
    shapes are scale-independent, so a profile only moves packet and
    flow volumes (and, for ``stress``, the request-rate density).
    """

    name: str
    scale_multiplier: float  # packet/flow volume vs the configured scale
    rate_multiplier: float = 1.0  # requests per wall-clock second
    description: str = ""


LOAD_PROFILES: dict[str, LoadProfile] = {
    "light": LoadProfile(
        "light", 0.25, description="quarter volume — smoke tests, CI"
    ),
    "standard": LoadProfile(
        "standard", 1.0, description="the configured scale, unchanged"
    ),
    "heavy": LoadProfile(
        "heavy", 4.0, 2.0, description="4x volume at double request rate"
    ),
    "stress": LoadProfile(
        "stress", 10.0, 5.0, description="10x volume at 5x request rate"
    ),
}


@dataclass
class CorpusConfig:
    """Knobs of the corpus generation run."""

    seed: int = 2023
    scale: float = 0.05  # volume multiplier vs the paper's Table 1
    start_epoch: float = 1_697_364_000.0  # 2023-10-15 10:00:00 UTC
    mobile_pin_rate: float = 1.0  # filler flows that stay TLS-opaque
    services: tuple[str, ...] | None = None  # None = all six
    # Extra linkable partners compensating for classifier attrition
    # (only relevant when bundles use non-standard keys; the default
    # stable-key bundles survive classification, so no overshoot).
    fanout_overshoot: float = 1.0
    profile: str = "standard"  # named load profile, see LOAD_PROFILES
    # Named network-impairment profile applied to every mobile capture
    # (see repro.stream.impair.IMPAIRMENT_PROFILES); None = clean link.
    # Impairment is seeded per trace, so generation stays deterministic.
    impair: str | None = None

    def __post_init__(self) -> None:
        if self.profile not in LOAD_PROFILES:
            known = ", ".join(sorted(LOAD_PROFILES))
            raise ValueError(f"unknown load profile {self.profile!r} (known: {known})")
        if self.impair is not None:
            from repro.stream.impair import impairment_profile

            impairment_profile(self.impair)  # fail fast on unknown names

    @property
    def load_profile(self) -> LoadProfile:
        return LOAD_PROFILES[self.profile]

    @property
    def effective_scale(self) -> float:
        """The volume multiplier after the load profile is applied."""
        return self.scale * self.load_profile.scale_multiplier

    def service_specs(self) -> list[ServiceSpec]:
        specs = SERVICES()
        if self.services is None:
            return specs
        wanted = set(self.services)
        return [spec for spec in specs if spec.key in wanted]

    def for_service(self, service: str) -> "CorpusConfig":
        """This config restricted to one service (the engine's shard unit)."""
        return dataclasses.replace(self, services=(service,))


@dataclass
class TracedRequest:
    """One generated request plus capture directives."""

    request: HttpRequest
    connection: str  # connection id, one TCP flow per id on mobile
    pinned: bool = False  # certificate-pinned: never decryptable


@dataclass
class RawTrace:
    """One trace unit: (service, platform, kind, age)."""

    service: str
    platform: Platform
    kind: TraceKind
    age: AgeGroup | None
    requests: list[TracedRequest] = field(default_factory=list)

    @property
    def column(self) -> TraceColumn:
        return TraceColumn.for_trace(self.kind, self.age)

    @property
    def name(self) -> str:
        age = self.age.value if self.age else "none"
        return f"{self.service}-{self.platform.value}-{self.kind.value}-{age}"


def _stable_seed(*parts) -> int:
    text = "|".join(str(p) for p in parts)
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


def service_trace_units(
    spec: ServiceSpec,
) -> list[tuple[Platform, TraceKind, AgeGroup | None]]:
    """The ordered trace units one service generates (paper §3.1)."""
    units: list[tuple[Platform, TraceKind, AgeGroup | None]] = []
    for platform in spec.platforms:
        for age in AgeGroup:
            units.append((platform, TraceKind.ACCOUNT_CREATION, age))
            units.append((platform, TraceKind.LOGGED_IN, age))
        units.append((platform, TraceKind.LOGGED_OUT, None))
    return units


# Scale-independent per-unit work (session script, grid coverage,
# capture round-trip) in the same relative currency as packet volume.
_BASE_UNIT_COST = 50.0


def estimate_unit_costs(config: CorpusConfig, spec: ServiceSpec) -> list[float]:
    """Relative processing-cost estimate per trace unit of a service.

    The dominant per-unit cost is packet volume, which the generator
    apportions by :data:`_PACKET_WEIGHTS`; a flat structural term
    covers the scale-independent work.  The engine's scheduler only
    needs *relative* accuracy — these numbers decide how service
    shards split and in what order sub-shards hit the worker pool.
    """
    units = service_trace_units(spec)
    weights = [_PACKET_WEIGHTS[kind] for (_, kind, _) in units]
    total_weight = sum(weights) or 1.0
    packets = spec.profile.volume.packets * config.effective_scale
    return [
        _BASE_UNIT_COST + packets * weight / total_weight for weight in weights
    ]


def ip_for(fqdn: str) -> str:
    """Deterministic public-looking IPv4 for a hostname (DNS stand-in)."""
    digest = hashlib.sha256(b"dns|" + fqdn.encode()).digest()
    return f"{34 + digest[0] % 100}.{digest[1]}.{digest[2]}.{1 + digest[3] % 253}"


class TrafficGenerator:
    """Generates the full corpus, one :class:`RawTrace` at a time."""

    def __init__(self, config: CorpusConfig | None = None) -> None:
        self.config = config or CorpusConfig()
        self.payloads = PayloadFactory(seed=self.config.seed)
        # Round-robin cursor for beacon spreading, per service.
        self._beacon_cursor: dict[str, int] = {}
        # The long-tail key population (§3.2.2's 3,968 unique raw data
        # types): every registry key of the 19 observed categories,
        # shuffled and partitioned across services.  Emitted in the
        # adult/web logged-in unit, where the Table 4 grid allows every
        # category for every service, so the mess cannot corrupt the
        # grid.
        from repro.ontology.coppa_ccpa import OBSERVED_LEVEL3

        tail = sorted(self.payloads.keys_for_categories(OBSERVED_LEVEL3))
        random.Random(self.config.seed).shuffle(tail)
        self._noise_keys = tail

    # ------------------------------------------------------------------
    # Corpus iteration
    # ------------------------------------------------------------------

    def trace_units(self, spec: ServiceSpec) -> list[tuple[Platform, TraceKind, AgeGroup | None]]:
        return service_trace_units(spec)

    def generate_corpus(
        self, unit_range: tuple[int, int] | None = None
    ) -> Iterator[RawTrace]:
        """Yield every trace unit of every configured service.

        ``unit_range`` restricts each service to a contiguous
        ``[start, stop)`` slice of its trace units — the engine's
        sub-shard unit.  Skipped units are not generated, but any
        cross-unit generator state they would have advanced (the
        beacon cursor) is advanced identically, so a unit's traffic is
        byte-for-byte the same whether its service is generated whole
        or in slices.
        """
        for spec in self.config.service_specs():
            yield from self.generate_service(spec, unit_range=unit_range)

    def generate_service(
        self, spec: ServiceSpec, unit_range: tuple[int, int] | None = None
    ) -> Iterator[RawTrace]:
        self._beacon_cursor[spec.key] = 0
        units = self.trace_units(spec)
        weights = [_PACKET_WEIGHTS[kind] for (_, kind, _) in units]
        total_weight = sum(weights)
        start, stop = unit_range if unit_range is not None else (0, len(units))
        for index, (platform, kind, age) in enumerate(units):
            if not start <= index < stop:
                # Outside this slice: replay only the unit's effect on
                # cross-unit state, in O(1) instead of generating it.
                if kind is not TraceKind.ACCOUNT_CREATION:
                    self._advance_beacon_cursor(spec, TraceColumn.for_trace(kind, age))
                continue
            packet_share = (
                spec.profile.volume.packets
                * self.config.effective_scale
                * weights[index]
                / total_weight
            )
            flow_share = (
                spec.profile.volume.tcp_flows
                * self.config.effective_scale
                * weights[index]
                / total_weight
            )
            yield self.generate_unit(
                spec,
                platform,
                kind,
                age,
                unit_index=index,
                packet_target=int(packet_share),
                flow_target=int(flow_share),
            )

    # ------------------------------------------------------------------
    # Grid helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _allowed(
        profile: ServiceProfile,
        level2: Level2,
        column: TraceColumn,
        cell: FlowCell,
        platform: Platform,
    ) -> bool:
        return profile.presence(level2, column, cell).on(platform)

    def _filter_types(
        self,
        types: list[Level3],
        profile: ServiceProfile,
        column: TraceColumn,
        cell: FlowCell,
        platform: Platform,
    ) -> list[Level3]:
        """Keep only types the grid allows for this cell and platform."""
        out = []
        for level3 in types:
            if column is TraceColumn.LOGGED_OUT and level3 in _UNDISCLOSED_WHEN_LOGGED_OUT:
                continue
            level2 = _LEVEL2_OF[level3]
            if self._allowed(profile, level2, column, cell, platform):
                out.append(level3)
        return out

    # ------------------------------------------------------------------
    # Request assembly
    # ------------------------------------------------------------------

    def _body_for(
        self,
        types: list[Level3],
        rng: random.Random,
        keys_per_type: int | None = None,
        avoid_opaque: bool = False,
        canonical: bool = False,
    ) -> bytes:
        payload: dict = {}
        for level3 in types:
            count = keys_per_type if keys_per_type is not None else rng.randint(1, 2)
            for key in self.payloads.pick_keys(
                level3,
                rng,
                count=count,
                avoid_opaque=avoid_opaque,
                canonical=canonical,
            ):
                payload[key] = self.payloads.make_value(level3, rng)
        return json.dumps(payload).encode()

    def _request(
        self,
        host: str,
        path: str,
        types: list[Level3],
        rng: random.Random,
        platform: Platform,
        method: str = "POST",
        timestamp: float = 0.0,
        session_cookie: str | None = None,
        as_query: bool = False,
        keys_per_type: int | None = None,
        avoid_opaque: bool = False,
        canonical: bool = False,
    ) -> HttpRequest:
        headers = [
            Header("User-Agent", _USER_AGENTS[platform]),
            Header("Accept", "*/*"),
        ]
        if session_cookie:
            headers.append(Header("Cookie", f"session={session_cookie}"))
        body = b""
        query = ""
        if types and (as_query or method == "GET"):
            pairs = []
            for level3 in types:
                count = keys_per_type if keys_per_type is not None else 1
                for key in self.payloads.pick_keys(
                    level3,
                    rng,
                    count=count,
                    avoid_opaque=avoid_opaque,
                    canonical=canonical,
                ):
                    pairs.append((key, str(self.payloads.make_value(level3, rng))))
            query = encode_query(pairs)
        elif types:
            body = self._body_for(
                types,
                rng,
                keys_per_type=keys_per_type,
                avoid_opaque=avoid_opaque,
                canonical=canonical,
            )
            headers.append(Header("Content-Type", "application/json"))
        url = Url(scheme="https", host=host, port=443, path=path, query=query)
        return HttpRequest(
            method=method,
            url=url,
            headers=headers,
            body=body,
            timestamp=timestamp,
        )

    # ------------------------------------------------------------------
    # Unit generation
    # ------------------------------------------------------------------

    def generate_unit(
        self,
        spec: ServiceSpec,
        platform: Platform,
        kind: TraceKind,
        age: AgeGroup | None,
        unit_index: int = 0,
        packet_target: int = 0,
        flow_target: int = 0,
    ) -> RawTrace:
        """Build one trace unit (see module docstring for the plan)."""
        profile = spec.profile
        column = TraceColumn.for_trace(kind, age)
        rng = random.Random(
            _stable_seed(self.config.seed, spec.key, platform.value, kind.value, age)
        )
        trace = RawTrace(service=spec.key, platform=platform, kind=kind, age=age)
        requests: list[tuple[HttpRequest, str, bool]] = []  # (req, dest-group, pinned)

        api_host = self._api_host(spec)
        session_cookie = (
            None if kind is TraceKind.LOGGED_OUT else f"sess-{_stable_seed(spec.key, age):x}"
        )
        # The cookie *name* ("session") is itself an extractable data
        # type (App or Service Usage); only attach it where the grid
        # allows that category to reach first parties on this platform.
        if session_cookie is not None and not self._allowed(
            profile,
            Level2.USER_INTERESTS_AND_BEHAVIORS,
            column,
            FlowCell.COLLECT_1ST,
            platform,
        ):
            session_cookie = None

        # 1. Session script against the first-party API.
        for interaction in script_for(
            spec.category, kind, age, spec.requires_parent_email
        ):
            types = self._interaction_types(interaction, profile, column, platform, kind)
            requests.append(
                (
                    self._request(
                        api_host,
                        interaction.path,
                        types,
                        rng,
                        platform,
                        method=interaction.method,
                        session_cookie=session_cookie,
                        canonical=True,
                    ),
                    api_host,
                    False,
                )
            )

        # 2. Grid coverage — only the logged-in (or logged-out) unit of
        #    a column does full coverage; account-creation units stick
        #    to the signup funnel plus first-party collection.
        if kind is not TraceKind.ACCOUNT_CREATION:
            requests.extend(
                self._collect_requests(spec, profile, column, platform, rng, session_cookie)
            )
            requests.extend(
                self._share_requests(spec, profile, column, platform, rng)
            )
            requests.extend(self._beacon_requests(spec, profile, column, platform, rng))
        else:
            requests.extend(
                self._collect_requests(
                    spec, profile, column, platform, rng, session_cookie, light=True
                )
            )

        # 3. Long-tail telemetry (adult/web logged-in only — see
        #    __init__ for why this placement is grid-safe).
        if (
            kind is TraceKind.LOGGED_IN
            and platform is Platform.WEB
            and age is AgeGroup.ADULT
        ):
            requests.extend(self._noise_requests(spec, rng, api_host, session_cookie))

        # 4. First-party asset sweep (scale-independent domain fan-out).
        requests.extend(
            self._asset_requests(spec, platform, rng, unit_index, profile, column)
        )

        # 5. Filler volume.
        requests.extend(
            self._filler_requests(
                spec, platform, rng, packet_target, len(requests), unit_index
            )
        )

        # 4. Connection assignment + timestamps.
        trace.requests = self._finalize(
            requests, kind, unit_index, flow_target, rng
        )
        return trace

    def _api_host(self, spec: ServiceSpec) -> str:
        for host in spec.first_party_pool:
            if host.startswith("api."):
                return host
        return spec.first_party_pool[0]

    def _interaction_types(
        self,
        interaction: Interaction,
        profile: ServiceProfile,
        column: TraceColumn,
        platform: Platform,
        kind: TraceKind,
    ) -> list[Level3]:
        intended = _INTERACTION_TYPES.get(interaction.name, _DEFAULT_INTERACTION_TYPES)
        return self._filter_types(
            list(intended), profile, column, FlowCell.COLLECT_1ST, platform
        )

    # -- collect flows (first party) -----------------------------------

    def _collect_requests(
        self,
        spec: ServiceSpec,
        profile: ServiceProfile,
        column: TraceColumn,
        platform: Platform,
        rng: random.Random,
        session_cookie: str | None,
        light: bool = False,
    ) -> list[tuple[HttpRequest, str, bool]]:
        out: list[tuple[HttpRequest, str, bool]] = []
        hosts = list(spec.first_party_pool)
        for level2 in LEVEL2_ROWS:
            types = self._filter_types(
                list(LEVEL3_BY_LEVEL2[level2]),
                profile,
                column,
                FlowCell.COLLECT_1ST,
                platform,
            )
            if types:
                count = 1 if light else min(5, len(hosts))
                for index in range(count):
                    host = hosts[(_stable_seed(level2.value) + index) % len(hosts)]
                    out.append(
                        (
                            self._request(
                                host,
                                f"/api/v1/collect/{level2.value.lower().replace(' ', '-')}",
                                types,
                                rng,
                                platform,
                                session_cookie=session_cookie,
                                canonical=True,
                                keys_per_type=2,
                            ),
                            host,
                            False,
                        )
                    )
            if light:
                continue
            ats_types = self._filter_types(
                list(LEVEL3_BY_LEVEL2[level2]),
                profile,
                column,
                FlowCell.COLLECT_1ST_ATS,
                platform,
            )
            if ats_types and spec.first_party_ats_pool:
                host = spec.first_party_ats_pool[
                    _stable_seed(level2.value, column.value, platform.value)
                    % len(spec.first_party_ats_pool)
                ]
                out.append(
                    (
                        self._request(
                            host,
                            "/v1/telemetry",
                            ats_types,
                            rng,
                            platform,
                            canonical=True,
                            keys_per_type=2,
                        ),
                        host,
                        False,
                    )
                )
        return out

    # -- share flows (third parties, linkability-shaped) ----------------

    def _partners(self, spec: ServiceSpec, column: TraceColumn) -> list[str]:
        """The column's linkable partner FQDNs (Figure 3 count)."""
        fanout = spec.profile.linkable_third_parties[column]
        if fanout:
            fanout = max(
                fanout, int(round(fanout * self.config.fanout_overshoot))
            )
        pool = spec.third_party_pool_interleaved()
        return pool[:fanout]

    def _share_requests(
        self,
        spec: ServiceSpec,
        profile: ServiceProfile,
        column: TraceColumn,
        platform: Platform,
        rng: random.Random,
    ) -> list[tuple[HttpRequest, str, bool]]:
        partners = self._partners(spec, column)
        if not partners:
            return []
        ats_pool = set(spec.third_party_ats_pool)
        linkable_set = profile.linkable_set(column)
        target = len(linkable_set)
        base_size = min(5, target)

        # Assign bundles: partners 0 and 1 (one ATS, one non-ATS by
        # pool interleaving) get the full largest set — each flow cell
        # filters it differently, and the measured largest set is the
        # per-partner union across platforms; everyone else gets the
        # base bundle.  Leftover grid cells not covered by the top
        # partners' sets are spread over the rest (capped at the
        # column's largest-set size so Figure 4 stays exact).
        bundles: list[list[Level3]] = []
        for index, partner in enumerate(partners):
            bundle = list(linkable_set) if index < 2 else list(linkable_set[:base_size])
            bundles.append(bundle)

        # Coverage repair: every share cell the grid allows must reach a
        # matching partner at least once.
        covered: set[tuple[Level2, FlowCell]] = set()
        for index, partner in enumerate(partners):
            cell = FlowCell.SHARE_3RD_ATS if partner in ats_pool else FlowCell.SHARE_3RD
            for level3 in bundles[index]:
                if profile.presence(_LEVEL2_OF[level3], column, cell) is not Presence.NONE:
                    covered.add((_LEVEL2_OF[level3], cell))
        for level2 in LEVEL2_ROWS:
            for cell in (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS):
                if profile.presence(level2, column, cell) is Presence.NONE:
                    continue
                if (level2, cell) in covered:
                    continue
                added = False
                for index, partner in enumerate(partners):
                    partner_cell = (
                        FlowCell.SHARE_3RD_ATS
                        if partner in ats_pool
                        else FlowCell.SHARE_3RD
                    )
                    if partner_cell is not cell or len(bundles[index]) >= target:
                        continue
                    extra = next(
                        (
                            t
                            for t in LEVEL3_BY_LEVEL2[level2]
                            if t not in bundles[index]
                            and not (
                                column is TraceColumn.LOGGED_OUT
                                and t in _UNDISCLOSED_WHEN_LOGGED_OUT
                            )
                        ),
                        None,
                    )
                    if extra is None:
                        continue
                    bundles[index].append(extra)
                    covered.add((level2, cell))
                    added = True
                    break
                if not added:
                    # No partner of the right ATS-ness has room; covered
                    # by a dedicated single-flow partner if one exists
                    # beyond the fanout — otherwise the cell stays
                    # uncovered (recorded by the audit as a deviation).
                    pass

        out: list[tuple[HttpRequest, str, bool]] = []
        # Services running wide header-bidding auctions (Quizlet's
        # hundreds of partners) ping their top exchanges on every
        # interaction — contact frequency scales with partner breadth.
        breadth_copies = 1 + min(3, len(partners) // 60)
        for index, partner in enumerate(partners):
            cell = FlowCell.SHARE_3RD_ATS if partner in ats_pool else FlowCell.SHARE_3RD
            types = self._filter_types(bundles[index], profile, column, cell, platform)
            if not types:
                continue
            path = "/pixel" if cell is FlowCell.SHARE_3RD_ATS else "/v1/data"
            # One deterministic key per (partner, type): real trackers
            # use fixed parameter names, and this keeps the measured
            # linkable-set sizes stable under classifier noise (a
            # misread substitutes a type instead of adding one).
            pairs: list[tuple[str, str]] = []
            for level3 in types:
                key_rng = random.Random(
                    _stable_seed("bundle", spec.key, partner, level3.value)
                )
                key = self.payloads.pick_keys(level3, key_rng, canonical=True)[0]
                pairs.append((key, str(self.payloads.make_value(level3, rng))))
            headers = [
                Header("User-Agent", _USER_AGENTS[platform]),
                Header("Accept", "*/*"),
            ]
            if index % 3 == 0:
                url = Url(
                    scheme="https",
                    host=partner,
                    port=443,
                    path=path,
                    query=encode_query(pairs),
                )
                request = HttpRequest(method="GET", url=url, headers=headers)
            else:
                body = json.dumps(dict(pairs)).encode()
                headers.append(Header("Content-Type", "application/json"))
                url = Url(scheme="https", host=partner, port=443, path=path)
                request = HttpRequest(
                    method="POST", url=url, headers=headers, body=body
                )
            copies = 1
            # The shared-head trackers (GA, DoubleClick, Amazon, Adobe,
            # Meta…) fire on every interaction, not once per session —
            # double their contact frequency so Figure 5's organization
            # ranking reflects it.
            if esld_of(partner) in _SHARED_HEAD_ESLDS:
                copies *= 2
            if index < 12:
                copies *= breadth_copies
            out.extend([(request, partner, False)] * copies)
        return out

    # -- non-linkable beacons -------------------------------------------

    _BEACON_TYPES = (
        Level3.NETWORK_CONNECTION_INFORMATION,
        Level3.SERVICE_INFORMATION,
        Level3.APP_OR_SERVICE_USAGE,
    )

    def _beacon_remaining(self, spec: ServiceSpec, column: TraceColumn) -> list[str]:
        """The non-linkable beacon pool for one unit (pool − partners)."""
        partners = set(self._partners(spec, column))
        return [
            fqdn
            for fqdn in spec.third_party_pool_interleaved()
            if fqdn not in partners
        ]

    def _advance_beacon_cursor(self, spec: ServiceSpec, column: TraceColumn) -> int:
        """Move the per-service beacon cursor exactly one unit forward.

        Shared by beacon emission and the skipped-unit fast path in
        :meth:`generate_service`, so slicing a service into sub-shards
        cannot drift the cursor.  Returns the cursor value the unit
        started from.
        """
        remaining = self._beacon_remaining(spec, column)
        cursor = self._beacon_cursor.get(spec.key, 0)
        self._beacon_cursor[spec.key] = cursor + max(1, len(remaining) // 4)
        return cursor

    def _beacon_requests(
        self,
        spec: ServiceSpec,
        profile: ServiceProfile,
        column: TraceColumn,
        platform: Platform,
        rng: random.Random,
    ) -> list[tuple[HttpRequest, str, bool]]:
        """Contact the rest of the pool with single-side (PI-only) data."""
        ats_pool = set(spec.third_party_ats_pool)
        remaining = self._beacon_remaining(spec, column)
        out: list[tuple[HttpRequest, str, bool]] = []
        cursor = self._advance_beacon_cursor(spec, column)
        # Walk the remaining pool from a moving cursor so each unit
        # spreads contacts and the corpus eventually touches everything.
        chunk = remaining[cursor % max(1, len(remaining)) :] + remaining[: cursor % max(1, len(remaining))]
        for fqdn in chunk:
            cell = FlowCell.SHARE_3RD_ATS if fqdn in ats_pool else FlowCell.SHARE_3RD
            beacon_type = next(
                (
                    t
                    for t in self._BEACON_TYPES
                    if self._allowed(profile, _LEVEL2_OF[t], column, cell, platform)
                ),
                None,
            )
            if beacon_type is None:
                continue
            # Keys chosen deterministically per destination, so a
            # beacon target always transmits the same 1-3 data types
            # across platforms and traces.  All beacon types are on the
            # personal-information side of the ontology, so beacon
            # targets can never measure as linkable.
            beacon_rng = random.Random(_stable_seed("beacon", spec.key, fqdn))
            allowed_types = [
                t
                for t in self._BEACON_TYPES
                if self._allowed(profile, _LEVEL2_OF[t], column, cell, platform)
            ]
            n_types = min(
                len(allowed_types), 2 + _stable_seed("beacon-breadth", fqdn) % 2
            )
            pairs = []
            for extra_type in allowed_types[:n_types]:
                key = self.payloads.pick_keys(extra_type, beacon_rng, canonical=True)[0]
                pairs.append(
                    (key, str(self.payloads.make_value(extra_type, beacon_rng)))
                )
            url = Url(
                scheme="https",
                host=fqdn,
                port=443,
                path="/b/collect",
                query=encode_query(pairs),
            )
            request = HttpRequest(
                method="GET",
                url=url,
                headers=[Header("User-Agent", _USER_AGENTS[platform]), Header("Accept", "*/*")],
            )
            out.append((request, fqdn, False))
        return out

    # -- long-tail noise stream -------------------------------------------

    def _noise_requests(
        self,
        spec: ServiceSpec,
        rng: random.Random,
        api_host: str,
        session_cookie: str | None,
    ) -> list[tuple[HttpRequest, str, bool]]:
        """Verbose first-party telemetry carrying the key long tail."""
        services = list(_SERVICE_ORDER)
        # Custom (non-catalog) services hash into a slot so the noise
        # stream still works for user-defined audits.
        index = (
            services.index(spec.key)
            if spec.key in services
            else _stable_seed(spec.key) % len(services)
        )
        chunk_size = (len(self._noise_keys) + len(services) - 1) // len(services)
        keys = self._noise_keys[index * chunk_size : (index + 1) * chunk_size]
        out: list[tuple[HttpRequest, str, bool]] = []
        batch = 8
        for start in range(0, len(keys), batch):
            payload = {
                key: self.payloads.make_value(self.payloads.registry.truth[key], rng)
                for key in keys[start : start + batch]
            }
            headers = [
                Header("User-Agent", _USER_AGENTS[Platform.WEB]),
                Header("Accept", "*/*"),
                Header("Content-Type", "application/json"),
            ]
            if session_cookie:
                headers.append(Header("Cookie", f"session={session_cookie}"))
            url = Url(
                scheme="https",
                host=api_host,
                port=443,
                path="/api/v1/telemetry/verbose",
            )
            out.append(
                (
                    HttpRequest(
                        method="POST",
                        url=url,
                        headers=headers,
                        body=json.dumps(payload, default=str).encode(),
                    ),
                    api_host,
                    False,
                )
            )
        return out

    # -- filler -----------------------------------------------------------

    def _filler_requests(
        self,
        spec: ServiceSpec,
        platform: Platform,
        rng: random.Random,
        packet_target: int,
        structural_count: int,
        unit_index: int = 0,
    ) -> list[tuple[HttpRequest, str, bool]]:
        if platform is Platform.MOBILE:
            # ~3 frames per filler request on mobile.
            structural_packets = structural_count * 3
            deficit = max(0, packet_target - structural_packets)
            count = deficit // 3
        else:
            deficit = max(0, packet_target - structural_count)
            count = deficit
        out: list[tuple[HttpRequest, str, bool]] = []
        hosts = list(spec.first_party_pool)
        offset = unit_index * 13  # stagger so units cover the pool
        for index in range(count):
            host = hosts[(offset + index) % len(hosts)]
            pinned = platform is Platform.MOBILE and rng.random() < self.config.mobile_pin_rate
            out.append(
                (
                    self._request(
                        host,
                        f"/static/chunk_{index % 97}.js",
                        [],
                        rng,
                        platform,
                        method="GET",
                    ),
                    f"filler:{host}",
                    pinned,
                )
            )
        return out

    def _asset_requests(
        self,
        spec: ServiceSpec,
        platform: Platform,
        rng: random.Random,
        unit_index: int,
        profile: ServiceProfile,
        column: TraceColumn,
    ) -> list[tuple[HttpRequest, str, bool]]:
        """Static-asset sweep over the first-party estate.

        Real sessions hit dozens of first-party hosts (CDN shards,
        thumbnails, API microservices) regardless of session length;
        this keeps the Table 1 per-service domain counts independent
        of the volume scale.  Each asset fetch also carries one
        deterministic PI-side query key (cache/version telemetry) when
        the grid allows it, which is what spreads ``<data type,
        destination>`` pairs across the first-party estate.
        """
        hosts = list(spec.first_party_pool) + list(spec.first_party_ats_pool)
        ats_hosts = set(spec.first_party_ats_pool)
        per_unit = max(1, len(hosts) // 3)
        start = (unit_index * per_unit) % len(hosts)
        slice_hosts = [hosts[(start + i) % len(hosts)] for i in range(per_unit)]
        out: list[tuple[HttpRequest, str, bool]] = []
        for index, host in enumerate(slice_hosts):
            cell = (
                FlowCell.COLLECT_1ST_ATS if host in ats_hosts else FlowCell.COLLECT_1ST
            )
            asset_type = next(
                (
                    t
                    for t in self._BEACON_TYPES
                    if self._allowed(profile, _LEVEL2_OF[t], column, cell, platform)
                ),
                None,
            )
            query = ""
            if asset_type is not None:
                key_rng = random.Random(_stable_seed("asset", spec.key, host))
                key = self.payloads.pick_keys(asset_type, key_rng, canonical=True)[0]
                query = encode_query(
                    [(key, str(self.payloads.make_value(asset_type, key_rng)))]
                )
            url = Url(
                scheme="https",
                host=host,
                port=443,
                path=f"/assets/a{index % 23}.bin",
                query=query,
            )
            out.append(
                (
                    HttpRequest(
                        method="GET",
                        url=url,
                        headers=[Header("User-Agent", _USER_AGENTS[platform])],
                    ),
                    host,
                    False,
                )
            )
        return out

    # -- finalization -------------------------------------------------------

    def _finalize(
        self,
        requests: list[tuple[HttpRequest, str, bool]],
        kind: TraceKind,
        unit_index: int,
        flow_target: int,
        rng: random.Random,
    ) -> list[TracedRequest]:
        """Assign timestamps and connection ids (TCP flow shaping)."""
        # Load profiles with a higher request rate compress the same
        # session into less wall-clock time (denser timestamps).
        duration = _DURATIONS[kind] / self.config.load_profile.rate_multiplier
        start = self.config.start_epoch + unit_index * 3_600.0
        count = max(1, len(requests))

        # Per-destination request indexes for connection splitting.
        by_dest: dict[str, int] = {}
        for _, dest, _ in requests:
            by_dest[dest] = by_dest.get(dest, 0) + 1
        extra_flows = max(0, flow_target - len(by_dest))
        # Split the busiest destinations into several connections.
        splits: dict[str, int] = {dest: 1 for dest in by_dest}
        if extra_flows:
            busiest = sorted(by_dest, key=by_dest.get, reverse=True)
            for index in range(extra_flows):
                dest = busiest[index % len(busiest)]
                if splits[dest] < by_dest[dest]:
                    splits[dest] += 1

        seen: dict[str, int] = {}
        finalized: list[TracedRequest] = []
        for order, (request, dest, pinned) in enumerate(requests):
            position = seen.get(dest, 0)
            seen[dest] = position + 1
            parts = splits[dest]
            per_part = max(1, by_dest[dest] // parts)
            connection = f"{dest}#{min(position // per_part, parts - 1)}"
            request.timestamp = start + duration * order / count + rng.random() * 0.05
            finalized.append(
                TracedRequest(request=request, connection=connection, pinned=pinned)
            )
        return finalized


_LEVEL2_OF: dict[Level3, Level2] = {
    level3: level2
    for level2, members in LEVEL3_BY_LEVEL2.items()
    for level3 in members
}

# Canonical service order for partitioning corpus-wide resources.
_SERVICE_ORDER = ("duolingo", "minecraft", "quizlet", "roblox", "tiktok", "youtube")

_DEFAULT_INTERACTION_TYPES: tuple[Level3, ...] = (
    Level3.APP_OR_SERVICE_USAGE,
    Level3.SERVICE_INFORMATION,
    Level3.NETWORK_CONNECTION_INFORMATION,
)

_INTERACTION_TYPES: dict[str, tuple[Level3, ...]] = {
    "app_launch": (
        Level3.DEVICE_INFORMATION,
        Level3.SERVICE_INFORMATION,
        Level3.LANGUAGE,
        Level3.LOCATION_TIME,
    ),
    "feature_flags": (Level3.SERVICE_INFORMATION, Level3.ALIASES),
    "telemetry_boot": (
        Level3.DEVICE_INFORMATION,
        Level3.NETWORK_CONNECTION_INFORMATION,
        Level3.DEVICE_SOFTWARE_IDENTIFIERS,
    ),
    "age_gate": (Level3.AGE,),
    "create_account": (
        Level3.NAME,
        Level3.CONTACT_INFORMATION,
        Level3.LOGIN_INFORMATION,
        Level3.AGE,
    ),
    "parent_email": (Level3.CONTACT_INFORMATION, Level3.ACCOUNT_SETTINGS),
    "consent": (Level3.ACCOUNT_SETTINGS,),
    "profile_setup": (Level3.NAME, Level3.GENDER_SEX, Level3.LANGUAGE),
    "login": (Level3.LOGIN_INFORMATION, Level3.CONTACT_INFORMATION),
    "session_refresh": (Level3.LOGIN_INFORMATION, Level3.ALIASES),
    "chat_send": (Level3.APP_OR_SERVICE_USAGE, Level3.ALIASES),
    "comment_post": (Level3.APP_OR_SERVICE_USAGE, Level3.ALIASES),
    "search": (Level3.APP_OR_SERVICE_USAGE,),
    "search_public": (Level3.APP_OR_SERVICE_USAGE,),
    "update_settings": (Level3.ACCOUNT_SETTINGS,),
    "notification_prefs": (Level3.ACCOUNT_SETTINGS,),
    "open_settings": (Level3.ACCOUNT_SETTINGS,),
    "video_watch": (
        Level3.APP_OR_SERVICE_USAGE,
        Level3.DEVICE_INFORMATION,
        Level3.INFERENCES,
    ),
    "watch_telemetry": (
        Level3.APP_OR_SERVICE_USAGE,
        Level3.NETWORK_CONNECTION_INFORMATION,
        Level3.DEVICE_INFORMATION,
    ),
    "match_telemetry": (
        Level3.APP_OR_SERVICE_USAGE,
        Level3.NETWORK_CONNECTION_INFORMATION,
    ),
    "telemetry_anon": (
        Level3.DEVICE_INFORMATION,
        Level3.NETWORK_CONNECTION_INFORMATION,
    ),
    "avatar_update": (Level3.APP_OR_SERVICE_USAGE, Level3.ALIASES),
    "progress_sync": (Level3.APP_OR_SERVICE_USAGE, Level3.ALIASES),
    "feed_scroll": (Level3.APP_OR_SERVICE_USAGE, Level3.INFERENCES),
    "landing_page": (Level3.SERVICE_INFORMATION, Level3.LANGUAGE),
    "browse_public": (Level3.SERVICE_INFORMATION, Level3.APP_OR_SERVICE_USAGE),
}
