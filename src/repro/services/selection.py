"""Service selection methodology (paper §2.2).

"To select services to audit, we searched through the top-100 most
popular games and apps on the Google Play Store and manually inspected
each app's privacy policy to determine the target audience and whether
the app fit our criteria": (i) directed at general audiences —
children, adolescents *and* adults — and (ii) account-based, so age
can be disclosed and consent given.  Six services qualified.

This module reproduces that funnel over a snapshot of the fall-2023
top-100 chart: each app carries the attributes the authors read off
its store page and policy, and :func:`select_services` applies the
paper's criteria mechanically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache


class Audience(str, enum.Enum):
    GENERAL = "general"  # children + adolescents + adults
    ADULTS_ONLY = "adults"  # 17+/18+ rated or adult-targeted
    TEENS_AND_ADULTS = "teens+"  # 13+ terms, no child audience
    CHILDREN_ONLY = "children"  # kids-only title


@dataclass(frozen=True)
class StoreApp:
    """One top-chart entry with the paper's selection attributes."""

    name: str
    key: str
    rank: int  # chart position, 1-100
    category: str
    audience: Audience
    has_accounts: bool  # users can create an account / disclose age
    downloads_billions: float  # cumulative installs, for §2.2's totals


def meets_criteria(app: StoreApp) -> bool:
    """The paper's two criteria (§2.2)."""
    return app.audience is Audience.GENERAL and app.has_accounts


def select_services(chart: list[StoreApp] | None = None) -> list[StoreApp]:
    """Apply the funnel; returns qualifying apps in rank order."""
    chart = chart if chart is not None else top100_snapshot()
    return sorted(
        (app for app in chart if meets_criteria(app)), key=lambda app: app.rank
    )


def _fill(rank: int, name: str, category: str, audience: Audience, accounts: bool, downloads: float = 0.1) -> StoreApp:
    key = name.lower().replace(" ", "-")
    return StoreApp(
        name=name,
        key=key,
        rank=rank,
        category=category,
        audience=audience,
        has_accounts=accounts,
        downloads_billions=downloads,
    )


@lru_cache(maxsize=1)
def top100_snapshot() -> list[StoreApp]:
    """A fall-2023-shaped top-100 chart.

    The six qualifying services sit at plausible chart positions; the
    rest of the chart is populated with the *kinds* of apps that fail
    each criterion (adult-targeted social apps, no-account utilities,
    kids-only titles), so the funnel's rejection logic is exercised.
    """
    chart: list[StoreApp] = [
        # ---- the six qualifying general-audience services -----------
        _fill(3, "TikTok", "social", Audience.GENERAL, True, 3.0),
        _fill(7, "YouTube", "video", Audience.GENERAL, True, 5.0),
        _fill(12, "Roblox", "games", Audience.GENERAL, True, 1.0),
        _fill(21, "Minecraft", "games", Audience.GENERAL, True, 0.9),
        _fill(34, "Duolingo", "education", Audience.GENERAL, True, 0.8),
        _fill(58, "Quizlet", "education", Audience.GENERAL, True, 0.3),
        # ---- fails criterion (i): not general audience ---------------
        _fill(1, "Instagram", "social", Audience.TEENS_AND_ADULTS, True, 4.0),
        _fill(2, "WhatsApp", "messaging", Audience.TEENS_AND_ADULTS, True, 5.0),
        _fill(4, "Facebook", "social", Audience.TEENS_AND_ADULTS, True, 5.0),
        _fill(5, "Snapchat", "social", Audience.TEENS_AND_ADULTS, True, 1.5),
        _fill(8, "Tinder", "dating", Audience.ADULTS_ONLY, True, 0.5),
        _fill(9, "X", "social", Audience.TEENS_AND_ADULTS, True, 1.0),
        _fill(15, "Reddit", "social", Audience.TEENS_AND_ADULTS, True, 0.5),
        _fill(18, "PK XD Kids World", "games", Audience.CHILDREN_ONLY, True, 0.1),
        _fill(25, "Toca Life World", "games", Audience.CHILDREN_ONLY, False, 0.1),
        _fill(40, "Discord", "messaging", Audience.TEENS_AND_ADULTS, True, 0.5),
        # ---- fails criterion (ii): no account / age disclosure -------
        _fill(6, "Subway Surfers", "games", Audience.GENERAL, False, 4.0),
        _fill(10, "Candy Crush Saga", "games", Audience.GENERAL, False, 3.0),
        _fill(14, "Temple Run 2", "games", Audience.GENERAL, False, 1.0),
        _fill(17, "Flashlight Pro", "utility", Audience.GENERAL, False, 0.5),
        _fill(23, "QR Scanner", "utility", Audience.GENERAL, False, 0.8),
        _fill(29, "Piano Tiles", "games", Audience.GENERAL, False, 0.6),
        _fill(45, "Weather Live", "utility", Audience.GENERAL, False, 0.4),
    ]
    used_ranks = {app.rank for app in chart}
    fillers = [
        ("Hyper Racer 3D", "games", Audience.GENERAL, False),
        ("Merge Blocks", "games", Audience.GENERAL, False),
        ("Photo Editor Plus", "utility", Audience.GENERAL, False),
        ("Sniper Strike", "games", Audience.ADULTS_ONLY, True),
        ("Casual Chat", "social", Audience.TEENS_AND_ADULTS, True),
        ("Idle Tycoon", "games", Audience.GENERAL, False),
        ("Coloring Fun Kids", "games", Audience.CHILDREN_ONLY, False),
        ("Battle Royale X", "games", Audience.TEENS_AND_ADULTS, True),
    ]
    index = 0
    for rank in range(1, 101):
        if rank in used_ranks:
            continue
        name, category, audience, accounts = fillers[index % len(fillers)]
        chart.append(
            _fill(rank, f"{name} {rank}", category, audience, accounts, 0.05)
        )
        index += 1
    return sorted(chart, key=lambda app: app.rank)


def selection_summary() -> dict:
    """The §2.2 funnel numbers."""
    chart = top100_snapshot()
    selected = select_services(chart)
    return {
        "chart_size": len(chart),
        "general_audience": sum(
            1 for app in chart if app.audience is Audience.GENERAL
        ),
        "with_accounts": sum(1 for app in chart if app.has_accounts),
        "selected": [app.name for app in selected],
        "cumulative_downloads_billions": round(
            sum(app.downloads_billions for app in selected), 1
        ),
    }
