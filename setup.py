"""Legacy setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs are unavailable; this shim lets ``pip install -e .``
fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
