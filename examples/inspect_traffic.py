#!/usr/bin/env python3
"""Raw capture artifacts: write HAR/PCAP/keylog files and decrypt them.

Demonstrates the capture layer the way the paper's tooling worked:
PCAPdroid writes a binary PCAP plus an NSS key log for the mobile app
trace; Chrome DevTools exports a HAR for the website trace.  The
script then plays auditor: parses the artifacts back, decrypts what
the key log allows, and reports what stayed opaque (certificate-pinned
flows).

Usage::

    python examples/inspect_traffic.py [output_dir]
"""

import sys
from pathlib import Path

from repro.capture import decrypt_mobile_artifact
from repro.datatypes.extract import extract_from_request
from repro.model import AgeGroup, Platform, TraceKind
from repro.net.har import read_har
from repro.net.pcap import PcapFile
from repro.net.tls import KeyLog
from repro.pipeline.corpus import CorpusProcessor
from repro.services import CorpusConfig


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("./artifacts")
    config = CorpusConfig(scale=0.01, services=("roblox",))
    print(f"Capturing Roblox traces into {output}/ ...")
    processor = CorpusProcessor(config=config, artifacts_dir=output)
    for parsed in processor:
        pass  # capture side effect: artifacts land on disk

    har_path = next(output.glob("roblox-web-logged_in-child.har"))
    pcap_path = next(output.glob("roblox-mobile-logged_in-child.pcap"))
    keylog_path = pcap_path.with_suffix(".keylog")

    print(f"\n--- {har_path.name} ---")
    har = read_har(har_path)
    print(f"entries: {len(har.entries)}")
    sample = har.entries[5].request
    print(f"sample request: {sample.method} {sample.url}")
    for item in extract_from_request(sample)[:6]:
        print(f"  extracted data type: {item.key} = {item.value!r} [{item.source}]")

    print(f"\n--- {pcap_path.name} + keylog ---")
    pcap = PcapFile.read(pcap_path)
    keylog = KeyLog.read(keylog_path)
    print(f"frames: {len(pcap)}, TLS secrets in keylog: {len(keylog.secrets)}")
    decryption = decrypt_mobile_artifact(pcap, keylog)
    print(
        f"decrypted requests: {len(decryption.requests)}, "
        f"TCP flows: {decryption.flow_count}, "
        f"undecryptable (pinned): {decryption.undecryptable_flows}"
    )
    if decryption.opaque:
        hosts = sorted({contact.host for contact in decryption.opaque})
        print(f"opaque destinations (SNI only): {', '.join(hosts[:5])} ...")

    print("\n--- decryption without the key log ---")
    blind = decrypt_mobile_artifact(pcap, KeyLog())
    print(
        f"decrypted requests: {len(blind.requests)} "
        f"(all {blind.undecryptable_flows} flows opaque — the key log matters)"
    )


if __name__ == "__main__":
    main()
