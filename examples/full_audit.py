#!/usr/bin/env python3
"""Full paper reproduction: all six services, every table and figure.

Runs the complete DiffAudit pipeline over Duolingo, Minecraft, Quizlet,
Roblox, TikTok, and YouTube/YouTube Kids, then prints the paper's
result artifacts: Table 1 (dataset), Table 4 (data-flow grid),
Figures 3/4 (linkability), Figure 5 (top ATS organizations), the §4.2
census, and the per-service audit summaries.

Usage::

    python examples/full_audit.py [scale]
"""

import sys
import time

from repro import CorpusConfig, DiffAudit
from repro.linkability.analysis import linkability_matrix
from repro.reporting import (
    render_census,
    render_fig3,
    render_fig4,
    render_fig5,
    render_table1,
    render_table4,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"Running the full six-service audit at scale {scale} ...")
    started = time.time()
    result = DiffAudit(CorpusConfig(scale=scale)).run()
    print(f"pipeline finished in {time.time() - started:.1f}s\n")

    print(render_table1(result.dataset))
    print()
    print(render_table4(result.flows))
    print()
    matrix = linkability_matrix(result.flows)
    print(render_fig3(matrix))
    print()
    print(render_fig4(matrix))
    print()
    print(render_fig5(result.alluvial))
    print()
    print(render_census(result.census))
    print()
    print(
        "Most common linkable set: "
        + ", ".join(sorted(t.value for t in result.common_linkable_set))
    )
    print(f"Unique data types: {result.unique_data_types:,} (paper: 3,968)")
    print(f"Unique data flows: {len(result.flows.unique_flows()):,} (paper: 5,508)")
    print()
    for service in sorted(result.audits):
        for line in result.audits[service].summary_lines():
            print(line)
        print()


if __name__ == "__main__":
    main()
