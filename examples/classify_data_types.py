#!/usr/bin/env python3
"""Standalone data type classification (paper §3.2.2).

Classifies raw traffic keys against the COPPA/CCPA ontology using the
full classifier stack: the five-temperature GPT-4 substitute sweep,
the majority-vote ensemble, and the alternative baselines the paper
compared against.

Usage::

    python examples/classify_data_types.py [key ...]

Without arguments, a demonstrative set of real-traffic-style keys is
used (plain words, abbreviations, camel-case compounds, opaque junk).
"""

import sys

from repro.datatypes import (
    BertFuzzyClassifier,
    MajorityVoteClassifier,
    TfidfFuzzyClassifier,
    ZeroShotClassifier,
)
from repro.datatypes.gpt4 import temperature_sweep

DEMO_KEYS = [
    "email",
    "advertising_id",
    "IsOptOutEmailShown",
    "pers_ad_show_third_part_measurement",
    "rtt",
    "dob",
    "usr_lang",
    "screen_resolution",
    "bffp3",  # opaque: internal meaning only
    "latitude",
    "interest_segment",
]


def main() -> None:
    keys = sys.argv[1:] or DEMO_KEYS

    print("=== GPT-4 substitute: temperature sweep ===")
    for model in temperature_sweep():
        print(f"\n-- {model.name} --")
        for verdict in model.classify_batch(keys):
            print("  " + verdict.formatted())

    print("\n=== Majority vote (the paper's final labeling scheme) ===")
    majority = MajorityVoteClassifier(confidence_mode="avg")
    for verdict in majority.classify_batch(keys):
        kept = "KEEP" if verdict.confidence >= 0.8 else "drop"
        print(f"  [{kept}@0.8] {verdict.formatted()}")

    print("\n=== Baselines (paper: far less accurate) ===")
    for baseline in (TfidfFuzzyClassifier(), BertFuzzyClassifier(), ZeroShotClassifier()):
        print(f"\n-- {baseline.name} --")
        for verdict in baseline.classify_batch(keys):
            label = verdict.label.value if verdict.label else "(no match)"
            print(f"  {verdict.text:<40} -> {label} ({verdict.confidence:.2f})")


if __name__ == "__main__":
    main()
