#!/usr/bin/env python3
"""Audit a *custom* general-audience service with DiffAudit.

The paper envisions DiffAudit being applied to new services as they
appear (§5.3).  This example defines a fictional gaming service,
"BlockCraft", from scratch — its behaviour profile (what it collects
and shares per age group), its privacy-policy disclosure model, and
its destination pools — then runs the full methodology against it.

BlockCraft is configured as a *well-behaved* service for children
(no third-party sharing at all for under-13 users, nothing while
logged out) but an aggressive one for adults, so the differential
audit has a real difference to surface — unlike the paper's six
services, whose age columns were nearly identical.
"""

from repro.audit.policy import PolicyModel, PolicyStatement
from repro.audit.report import audit_service
from repro.destinations.dataset import default_universe
from repro.destinations.party import DestinationLabeler
from repro.flows.builder import FlowBuilder
from repro.flows.dataflow import FlowTable
from repro.datatypes.majority import MajorityVoteClassifier
from repro.model import AGE_COLUMNS, FlowCell, Platform, TraceColumn
from repro.ontology.nodes import Level2
from repro.pipeline.corpus import CorpusProcessor
from repro.services import CorpusConfig, TrafficGenerator
from repro.services.catalog import ServiceSpec
from repro.services.profiles import ServiceProfile, VolumeTargets, _parse_grid


def build_blockcraft() -> tuple[ServiceSpec, PolicyModel]:
    """A new service: collect-everything, but child-protective."""
    grid = _parse_grid(
        {
            # child: first-party only | adolescent: some ATS sharing |
            # adult: everything | logged out: nothing at all
            Level2.PERSONAL_IDENTIFIERS: "B--- B--B B-BB ----",
            Level2.DEVICE_IDENTIFIERS: "B--- B--B B-BB ----",
            Level2.PERSONAL_CHARACTERISTICS: "B--- B--- B-BB ----",
            Level2.GEOLOCATION: "---- ---- B--B ----",
            Level2.USER_COMMUNICATIONS: "B--- B--B B-BB ----",
            Level2.USER_INTERESTS_AND_BEHAVIORS: "B--- B--B B-BB ----",
        }
    )
    profile = ServiceProfile(
        service="blockcraft",
        grid=grid,
        linkable_third_parties={
            TraceColumn.CHILD: 0,
            TraceColumn.ADOLESCENT: 6,
            TraceColumn.ADULT: 25,
            TraceColumn.LOGGED_OUT: 0,
        },
        largest_linkable_set={
            TraceColumn.CHILD: 0,
            TraceColumn.ADOLESCENT: 5,
            TraceColumn.ADULT: 9,
            TraceColumn.LOGGED_OUT: 0,
        },
        volume=VolumeTargets(domains=60, eslds=30, packets=20_000, tcp_flows=600),
        partner_orgs=("PubMatic, Inc.", "Braze, Inc.", "AppsFlyer"),
    )

    universe = default_universe()
    ats_pool = tuple(universe.ats_fqdns()[:40])
    non_ats_pool = tuple(universe.non_ats_third_party_fqdns()[:10])
    spec = ServiceSpec(
        key="blockcraft",
        display_name="BlockCraft",
        category="gaming",
        platforms=(Platform.WEB, Platform.MOBILE),
        first_party_names=("blockcraft",),
        first_party_owner="BlockCraft Studios",
        requires_parent_email=True,
        profile=profile,
        first_party_pool=(
            "api.blockcraft.example",
            "www.blockcraft.example",
            "cdn.blockcraft.example",
            "assets.blockcraft.example",
        ),
        first_party_ats_pool=(),
        third_party_ats_pool=ats_pool,
        third_party_non_ats_pool=non_ats_pool,
    )

    policy = PolicyModel(
        service="blockcraft",
        statements=(
            PolicyStatement(
                quote="We never share children's data with anyone.",
                audiences=(TraceColumn.CHILD,),
                prohibits=tuple(
                    (level2, cell)
                    for level2 in Level2
                    for cell in (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS)
                ),
            ),
            PolicyStatement(
                quote="We share usage and device data with partners for teens and adults.",
                audiences=(TraceColumn.ADOLESCENT, TraceColumn.ADULT),
                discloses=tuple(
                    (level2, cell)
                    for level2 in Level2
                    for cell in (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS)
                ),
            ),
        ),
    )
    return spec, policy


def main() -> None:
    spec, policy = build_blockcraft()
    config = CorpusConfig(scale=0.01)
    generator = TrafficGenerator(config)
    processor = CorpusProcessor(config=config)
    labeler = DestinationLabeler(
        service_names=spec.first_party_names,
        first_party_owner=spec.first_party_owner,
    )
    builder = FlowBuilder(classifier=MajorityVoteClassifier(confidence_mode="avg"))

    print("Generating and auditing BlockCraft traffic ...")
    flows = FlowTable()
    for trace in generator.generate_service(spec):
        parsed = processor.process_trace(trace)
        for request in parsed.requests:
            flows.extend(
                builder.flows_for_request(
                    request,
                    labeler,
                    service=spec.key,
                    platform=parsed.meta.platform,
                    kind=parsed.meta.kind,
                    age=parsed.meta.age,
                )
            )

    report = audit_service(flows, spec.key, policy=policy)
    print()
    for line in report.summary_lines():
        print(line)

    print("\nDifferential audit (the interesting part for BlockCraft):")
    for differential in report.age_differentials:
        print(
            f"  {differential.left.value} vs {differential.right.value}: "
            f"{differential.similarity:.0%} identical, "
            f"{len(differential.differences)} differing cells"
        )
    print(
        "\nBlockCraft — unlike the paper's six services — actually "
        "differentiates ages: no child flows leave the first party, no "
        "logged-out processing, and its policy matches its behaviour:"
    )
    print(f"  pre-consent processing: {report.processed_before_consent}")
    print(f"  policy inconsistencies: {report.has_policy_inconsistency}")


if __name__ == "__main__":
    main()
