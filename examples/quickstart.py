#!/usr/bin/env python3
"""Quickstart: audit one general-audience service end to end.

Runs the full DiffAudit methodology against the simulated TikTok
service — traffic generation, capture, decryption, data type
classification, destination analysis, differential audit, and
linkability — and prints the audit summary.

Usage::

    python examples/quickstart.py [service] [scale]

where ``service`` is one of duolingo, minecraft, quizlet, roblox,
tiktok, youtube (default tiktok) and ``scale`` is the traffic volume
relative to the paper's (default 0.01).
"""

import sys

from repro import CorpusConfig, DiffAudit, TraceColumn


def main() -> None:
    service = sys.argv[1] if len(sys.argv) > 1 else "tiktok"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01

    print(f"Auditing {service!r} at scale {scale} ...")
    result = DiffAudit(CorpusConfig(scale=scale, services=(service,))).run()

    report = result.audits[service]
    print()
    for line in report.summary_lines():
        print(line)

    print("\nLinkability (third parties sent linkable data / largest set):")
    for column in TraceColumn:
        link = result.linkability[(service, column)]
        print(
            f"  {column.value:<11} {link.linkable_third_parties:>4} third parties, "
            f"largest set {link.largest_set_size} data types"
        )

    print("\nTop findings:")
    for finding in report.high_severity()[:8]:
        print(f"  {finding.one_line()}")

    stats = result.dataset.per_service[service]
    print(
        f"\nDataset: {stats.domain_count} domains, {stats.esld_count} eSLDs, "
        f"{stats.packets:,} packets, {stats.tcp_flows:,} TCP flows"
    )
    print(f"Unique raw data types observed: {result.unique_data_types:,}")


if __name__ == "__main__":
    main()
